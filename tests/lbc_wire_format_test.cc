// Coherency wire format: round trips, §3.2 header compression bounds, the
// uncompressed (standard-RVM-header) emulation, and lock protocol messages.
#include "src/lbc/wire_format.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace {

rvm::TransactionRecord MakeTxn() {
  rvm::TransactionRecord txn;
  txn.node = 4;
  txn.commit_seq = 11;
  txn.locks = {{3, 7}};
  txn.ranges.push_back({1, 100, {1, 2, 3, 4, 5, 6, 7, 8}});
  txn.ranges.push_back({1, 200, {9, 9}});          // near predecessor: delta
  txn.ranges.push_back({1, 5 * 1024 * 1024, {1}}); // far: absolute
  return txn;
}

TEST(WireFormat, UpdateRoundTripCompressed) {
  rvm::TransactionRecord txn = MakeTxn();
  auto payload = lbc::EncodeUpdateRecord(txn, /*compress_headers=*/true);
  rvm::TransactionRecord out;
  ASSERT_TRUE(lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_EQ(txn.node, out.node);
  EXPECT_EQ(txn.commit_seq, out.commit_seq);
  EXPECT_EQ(txn.locks, out.locks);
  EXPECT_EQ(txn.ranges, out.ranges);
}

TEST(WireFormat, UpdateRoundTripUncompressed) {
  rvm::TransactionRecord txn = MakeTxn();
  auto payload = lbc::EncodeUpdateRecord(txn, /*compress_headers=*/false);
  rvm::TransactionRecord out;
  ASSERT_TRUE(lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_EQ(txn.ranges, out.ranges);
}

TEST(WireFormat, CompressionShrinksHeaders) {
  rvm::TransactionRecord txn = MakeTxn();
  auto small = lbc::EncodeUpdateRecord(txn, true);
  auto big = lbc::EncodeUpdateRecord(txn, false);
  // Uncompressed pays the 104-byte standard RVM header per range.
  EXPECT_GT(big.size(), small.size() + 2 * (lbc::kStandardRvmRangeHeaderSize - 24));
}

TEST(WireFormat, CompressedHeaderSizeBounds) {
  // The paper's compressed headers run 4-24 bytes; ours are varint-based
  // and must stay within [3, 24] for any range geometry.
  const uint64_t offsets[] = {0, 1, 255, 4095, 1ull << 20, 1ull << 40, UINT64_MAX / 2};
  const uint64_t lens[] = {1, 8, 4095, 4096, 1ull << 20};
  for (uint64_t prev : offsets) {
    for (uint64_t off : offsets) {
      for (uint64_t len : lens) {
        size_t size = lbc::CompressedRangeHeaderSize(prev, off, len);
        EXPECT_GE(size, 3u);
        EXPECT_LE(size, 24u);
      }
    }
  }
}

TEST(WireFormat, NearRangesUseDeltaEncoding) {
  // Two small nearby ranges: the second header must be tiny.
  size_t first = lbc::CompressedRangeHeaderSize(UINT64_MAX, 1ull << 30, 8);
  size_t nearby = lbc::CompressedRangeHeaderSize(1ull << 30, (1ull << 30) + 200, 8);
  EXPECT_GT(first, nearby);
  EXPECT_LE(nearby, 5u);  // tag + region + 2-byte delta + 1-byte len
}

TEST(WireFormat, SparseOo7StyleHeadersAverageNearFourBytes) {
  // 500 ranges of 8 bytes, one per 8 KB page (the T12-A/T2-A pattern):
  // Table 3 shows 6000 message bytes for 4000 data bytes — 4 bytes/header.
  rvm::TransactionRecord txn;
  txn.node = 1;
  txn.commit_seq = 1;
  for (int i = 0; i < 500; ++i) {
    txn.ranges.push_back(
        {1, static_cast<uint64_t>(i) * 8192, {0, 0, 0, 0, 0, 0, 0, 0}});
  }
  auto payload = lbc::EncodeUpdateRecord(txn, true);
  size_t data_bytes = 500 * 8;
  size_t header_bytes = payload.size() - data_bytes;
  EXPECT_LT(header_bytes, 500 * 6);  // ~4-5 bytes per range + message header
  EXPECT_GT(header_bytes, 500 * 3);
}

TEST(WireFormat, EmptyUpdateRoundTrips) {
  rvm::TransactionRecord txn;
  txn.node = 2;
  txn.commit_seq = 3;
  txn.locks = {{1, 1}};
  auto payload = lbc::EncodeUpdateRecord(txn, true);
  rvm::TransactionRecord out;
  ASSERT_TRUE(lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_TRUE(out.ranges.empty());
  EXPECT_EQ(txn.locks, out.locks);
}

TEST(WireFormat, PeekTypeRejectsGarbage) {
  uint8_t junk = 0x63;
  EXPECT_FALSE(lbc::PeekMsgType(base::ByteSpan(&junk, 1)).ok());
  EXPECT_FALSE(lbc::PeekMsgType(base::ByteSpan(&junk, 0)).ok());
}

TEST(WireFormat, TruncatedUpdateIsDataLoss) {
  auto payload = lbc::EncodeUpdateRecord(MakeTxn(), true);
  payload.resize(payload.size() / 2);
  rvm::TransactionRecord out;
  EXPECT_FALSE(lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
}

TEST(WireFormat, LockRequestRoundTrip) {
  lbc::LockRequestMsg msg{42, 7, 13};
  auto payload = lbc::EncodeLockRequest(msg);
  EXPECT_EQ(lbc::MsgType::kLockRequest,
            *lbc::PeekMsgType(base::ByteSpan(payload.data(), payload.size())));
  lbc::LockRequestMsg out;
  ASSERT_TRUE(
      lbc::DecodeLockRequest(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_EQ(msg.lock, out.lock);
  EXPECT_EQ(msg.requester, out.requester);
  EXPECT_EQ(msg.applied_seq, out.applied_seq);
}

TEST(WireFormat, LockForwardRoundTrip) {
  lbc::LockForwardMsg msg{8, 2, 5};
  auto payload = lbc::EncodeLockForward(msg);
  lbc::LockForwardMsg out;
  ASSERT_TRUE(
      lbc::DecodeLockForward(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_EQ(msg.lock, out.lock);
  EXPECT_EQ(msg.requester, out.requester);
}

TEST(WireFormat, LockTokenRoundTripWithPiggyback) {
  lbc::LockTokenMsg msg;
  msg.lock = 9;
  msg.token_seq = 77;
  msg.piggyback.push_back(MakeTxn());
  msg.piggyback.push_back(MakeTxn());
  msg.piggyback[1].commit_seq = 12;
  auto payload = lbc::EncodeLockToken(msg, true);
  lbc::LockTokenMsg out;
  ASSERT_TRUE(
      lbc::DecodeLockToken(base::ByteSpan(payload.data(), payload.size()), &out).ok());
  EXPECT_EQ(9u, out.lock);
  EXPECT_EQ(77u, out.token_seq);
  ASSERT_EQ(2u, out.piggyback.size());
  EXPECT_EQ(11u, out.piggyback[0].commit_seq);
  EXPECT_EQ(12u, out.piggyback[1].commit_seq);
  EXPECT_EQ(msg.piggyback[0].ranges, out.piggyback[0].ranges);
}

TEST(WireFormat, WrongTypeDecodeFails) {
  auto payload = lbc::EncodeLockRequest({1, 1, 0});
  lbc::LockForwardMsg fwd;
  EXPECT_FALSE(
      lbc::DecodeLockForward(base::ByteSpan(payload.data(), payload.size()), &fwd).ok());
  rvm::TransactionRecord rec;
  EXPECT_FALSE(lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &rec).ok());
}

// Property: random transactions round-trip in both header modes.
class WireFormatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFormatPropertyTest, RandomRoundTrip) {
  base::Rng rng(GetParam());
  rvm::TransactionRecord txn;
  txn.node = static_cast<rvm::NodeId>(rng.Uniform(10));
  txn.commit_seq = rng.Uniform(1000);
  int n_locks = static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < n_locks; ++i) {
    txn.locks.push_back({rng.Uniform(100), rng.Uniform(1000)});
  }
  int n_ranges = static_cast<int>(rng.Uniform(20));
  uint64_t offset = 0;
  for (int i = 0; i < n_ranges; ++i) {
    offset += rng.Uniform(1 << 20);  // sometimes near, sometimes far
    rvm::RangeImage img;
    img.region = static_cast<rvm::RegionId>(1 + rng.Uniform(3));
    img.offset = offset;
    img.data.resize(1 + rng.Uniform(300));
    for (auto& b : img.data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    txn.ranges.push_back(std::move(img));
  }
  for (bool compress : {true, false}) {
    auto payload = lbc::EncodeUpdateRecord(txn, compress);
    rvm::TransactionRecord out;
    ASSERT_TRUE(
        lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
    EXPECT_EQ(txn.ranges, out.ranges);
    EXPECT_EQ(txn.locks, out.locks);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFormatPropertyTest, ::testing::Range<uint64_t>(0, 10));

// --- CompressedRangeHeaderSize vs the encoder's actual emission -------------
//
// CompressedRangeHeaderSize is the estimator the Table 3 message-byte
// accounting uses; if it drifts from what EncodeRangeHeader really emits, the
// reported message bytes silently lie. Measure the true emitted header by
// size-differencing two encodings: a record with the predecessor range alone,
// and the same record plus the range under test. Everything else (message
// header, range count varint for counts < 128, predecessor bytes) cancels.
size_t EmittedHeaderSize(uint64_t prev_start, uint64_t start, uint64_t len) {
  rvm::TransactionRecord base_txn;
  base_txn.node = 1;
  base_txn.commit_seq = 1;
  if (prev_start != UINT64_MAX) {
    base_txn.ranges.push_back({1, prev_start, {0xAA}});
  }
  rvm::TransactionRecord with_txn = base_txn;
  rvm::RangeImage img;
  img.region = 1;  // estimator assumes small (1-byte varint) region ids
  img.offset = start;
  img.data.assign(len, 0xBB);
  with_txn.ranges.push_back(std::move(img));
  size_t base_size = lbc::EncodeUpdateRecord(base_txn, /*compress_headers=*/true).size();
  size_t with_size = lbc::EncodeUpdateRecord(with_txn, /*compress_headers=*/true).size();
  return with_size - base_size - len;
}

TEST(WireFormat, HeaderSizeEstimatorMatchesEncoderAtBoundaries) {
  constexpr uint64_t kBase = 1ull << 30;
  struct Case {
    uint64_t prev;
    uint64_t start;
    uint64_t len;
  };
  const Case cases[] = {
      {UINT64_MAX, 0, 1},                        // first range, minimal: 4 bytes
      {0, 0, 1},                                 // zero delta
      {UINT64_MAX, kBase, 1},                    // first range, big absolute addr
      {kBase, kBase + 127, 1},                   // delta varint 1-byte max
      {kBase, kBase + 128, 1},                   // delta varint rolls to 2 bytes
      {kBase, kBase + 16383, 1},                 // 2-byte varint max
      {kBase, kBase + 16384, 1},                 // 3 bytes
      {kBase, kBase + lbc::kNearRangeBound - 1, 1},  // last delta-eligible gap
      {kBase, kBase + lbc::kNearRangeBound, 1},      // absolute again
      {kBase, kBase - 1, 1},                     // start < prev: absolute
      {kBase, kBase + 1, 127},                   // len varint boundaries
      {kBase, kBase + 1, 128},
      {kBase, kBase + 1, 16383},
      {kBase, kBase + 1, 16384},
      {UINT64_MAX, UINT64_MAX, 1},               // 10-byte address varint
  };
  for (const Case& c : cases) {
    size_t estimated = lbc::CompressedRangeHeaderSize(c.prev, c.start, c.len);
    size_t emitted = EmittedHeaderSize(c.prev, c.start, c.len);
    EXPECT_EQ(emitted, estimated)
        << "prev=" << c.prev << " start=" << c.start << " len=" << c.len;
    EXPECT_GE(estimated, 4u);   // tag + region + addr + len, one byte each
    EXPECT_LE(estimated, 24u);  // paper's compressed-header ceiling
  }
  // The two sides of the delta bound really differ in encoding, not just in
  // size bookkeeping: the in-bound gap is a 3-byte delta varint, while one
  // byte further must fall back to the 5-byte absolute address.
  EXPECT_LT(lbc::CompressedRangeHeaderSize(kBase, kBase + lbc::kNearRangeBound - 1, 1),
            lbc::CompressedRangeHeaderSize(kBase, kBase + lbc::kNearRangeBound, 1));
}

class HeaderSizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeaderSizePropertyTest, EstimatorMatchesEncoderOnRandomTriples) {
  base::Rng rng(0x5EADE7 * (GetParam() + 1));
  for (int i = 0; i < 200; ++i) {
    // Magnitude-stratified starts exercise every varint width up to 2^48;
    // lengths stay allocatable (the emitted size is measured on real data).
    uint64_t prev = rng.Chance(1, 4) ? UINT64_MAX
                                     : rng.Next() >> (16 + rng.Uniform(48));
    uint64_t start;
    if (prev != UINT64_MAX && rng.Chance(1, 2)) {
      start = prev + rng.Uniform(2 * lbc::kNearRangeBound);  // straddle the bound
    } else {
      start = rng.Next() >> (16 + rng.Uniform(48));
    }
    uint64_t len = 1 + (rng.Next() >> (43 + rng.Uniform(21)));  // 1 .. ~2 MB
    size_t estimated = lbc::CompressedRangeHeaderSize(prev, start, len);
    size_t emitted = EmittedHeaderSize(prev, start, len);
    ASSERT_EQ(emitted, estimated)
        << "prev=" << prev << " start=" << start << " len=" << len;
    ASSERT_GE(estimated, 4u);
    ASSERT_LE(estimated, 24u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderSizePropertyTest, ::testing::Range<uint64_t>(0, 5));

}  // namespace
