// OO7 queries: correctness against brute-force evaluation, scan bounds,
// behaviour under structural churn, and the read-path property that queries
// generate zero coherency traffic.
#include "src/oo7/queries.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/lbc/client.h"
#include "src/oo7/structural.h"
#include "src/store/mem_store.h"

namespace {

struct Fixture {
  Fixture() : config(oo7::TinyConfig()), rng(11) {
    image.resize(oo7::Database::RequiredSize(config), 0);
    EXPECT_TRUE(oo7::Database::Build(image.data(), image.size(), config).ok());
  }
  oo7::Database db() { return oo7::Database(image.data()); }

  oo7::Config config;
  std::vector<uint8_t> image;
  base::Rng rng;
};

TEST(Oo7Queries, Q1AllLookupsHit) {
  Fixture fx;
  auto result = oo7::RunQ1(fx.db(), fx.rng, 25);
  EXPECT_EQ(25u, result.visited);
  EXPECT_EQ(25u, result.matches);
}

TEST(Oo7Queries, Q7ScansEveryPart) {
  Fixture fx;
  auto result = oo7::RunQ7(fx.db(), fx.rng);
  EXPECT_EQ(fx.config.NumAtomicParts(), result.matches);
  EXPECT_EQ(result.visited, result.matches);
}

TEST(Oo7Queries, RangeQueriesSelectProportionally) {
  Fixture fx;
  auto q2 = oo7::RunQ2(fx.db(), fx.rng);
  auto q3 = oo7::RunQ3(fx.db(), fx.rng);
  auto q7 = oo7::RunQ7(fx.db(), fx.rng);
  EXPECT_GT(q2.matches, 0u);
  EXPECT_LT(q2.matches, q7.matches / 10);  // ~1% vs 100%
  EXPECT_GT(q3.matches, q2.matches);
  EXPECT_LT(q3.matches, q7.matches);
}

TEST(Oo7Queries, ScanMatchesBruteForce) {
  Fixture fx;
  oo7::AvlIndex index = fx.db().index();
  int64_t lo = oo7::Database::IndexKey(10, 0);
  int64_t hi = oo7::Database::IndexKey(40, 0);
  // Brute force: count parts with key in range.
  uint64_t expected = 0;
  oo7::Database db = fx.db();
  for (uint32_t ci = 0; ci < fx.config.num_composite_parts; ++ci) {
    const oo7::CompositePart* comp = db.composite(db.composite_offset(ci));
    for (uint32_t ai = 0; ai < comp->n_parts; ++ai) {
      int64_t key =
          db.atomic(comp->parts_base + ai * sizeof(oo7::AtomicPart))->index_key;
      if (key >= lo && key <= hi) {
        ++expected;
      }
    }
  }
  uint64_t scanned = 0;
  int64_t prev = INT64_MIN;
  index.Scan(lo, hi, [&](int64_t key, uint64_t) {
    EXPECT_GT(key, prev) << "scan not in order";
    EXPECT_GE(key, lo);
    EXPECT_LE(key, hi);
    prev = key;
    ++scanned;
    return true;
  });
  EXPECT_EQ(expected, scanned);
}

TEST(Oo7Queries, ScanEarlyStop) {
  Fixture fx;
  oo7::AvlIndex index = fx.db().index();
  uint64_t seen = 0;
  index.Scan(INT64_MIN + 1, INT64_MAX - 1, [&](int64_t, uint64_t) {
    return ++seen < 5;
  });
  EXPECT_EQ(5u, seen);
}

TEST(Oo7Queries, MinMaxKeys) {
  Fixture fx;
  oo7::AvlIndex index = fx.db().index();
  EXPECT_EQ(oo7::Database::IndexKey(1, 0), *index.MinKey());
  EXPECT_EQ(oo7::Database::IndexKey(fx.config.NumAtomicParts(), 0), *index.MaxKey());
}

TEST(Oo7Queries, Q5FindsSomeAssemblies) {
  Fixture fx;
  auto result = oo7::RunQ5(fx.db());
  EXPECT_EQ(fx.config.NumBaseAssemblies(), result.visited);
  EXPECT_GT(result.matches, 0u);
  EXPECT_LE(result.matches, result.visited);
}

TEST(Oo7Queries, SurviveStructuralChurn) {
  Fixture fx;
  oo7::NullSink sink;
  for (int i = 0; i < 30; ++i) {
    if (fx.rng.Chance(1, 2)) {
      oo7::InsertCompositePart(fx.db(), sink, fx.rng).ok();
    } else {
      auto victim = oo7::RandomActiveComposite(fx.db(), fx.rng);
      ASSERT_TRUE(victim.ok());
      oo7::DeleteCompositePart(fx.db(), sink, *victim, fx.rng).ok();
    }
  }
  auto q7 = oo7::RunQ7(fx.db(), fx.rng);
  EXPECT_EQ(fx.db().header()->active_composites * fx.config.atomic_per_composite,
            q7.matches);
  auto q1 = oo7::RunQ1(fx.db(), fx.rng, 10);
  EXPECT_EQ(q1.visited, q1.matches);
}

TEST(Oo7Queries, ReadOnlyQueriesGenerateNoCoherencyTraffic) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(1, 1, 1);
  oo7::Config config = oo7::TinyConfig();
  std::vector<uint8_t> image(oo7::Database::RequiredSize(config), 0);
  ASSERT_TRUE(oo7::Database::Build(image.data(), image.size(), config).ok());
  {
    auto file = std::move(*store.Open(rvm::RegionFileName(1), true));
    ASSERT_TRUE(file->Write(0, base::ByteSpan(image.data(), image.size())).ok());
  }
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  ASSERT_TRUE(a->MapRegion(1, image.size()).ok());
  ASSERT_TRUE(b->MapRegion(1, image.size()).ok());

  base::Rng rng(5);
  oo7::Database db(a->GetRegion(1)->data());
  (void)oo7::RunQ1(db, rng, 20);
  (void)oo7::RunQ3(db, rng);
  (void)oo7::RunQ7(db, rng);
  (void)oo7::RunQ5(db);
  EXPECT_EQ(0u, a->stats().updates_sent);
  EXPECT_EQ(0u, a->stats().lock_messages_sent);
  EXPECT_EQ(0u, b->stats().updates_received);
}

}  // namespace
