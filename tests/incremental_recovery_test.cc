// Incremental ("instant") recovery: a restarted server builds a per-page
// index over the merged logs instead of replaying them, declares itself
// serving immediately, and materializes pages on first touch or from the
// background drainer. These tests pin, in order:
//
//   * the LogIndex itself (mirrors the merged history; Extend dedups by
//     per-node commit sequence),
//   * the serve-before-drain window and post-drain byte identity with
//     eager replay,
//   * the op_deadline_ms bound on a first-touch wait (the transaction — and
//     the client — stay usable after a DEADLINE_EXCEEDED map),
//   * lazily discovered pre-image rot failing certification and routing
//     through the Scrubber instead of being replayed over,
//   * a dead-client recovery that no longer starves the calling heartbeat
//     thread behind a synchronous replay, and
//   * the boot-record dedup that keeps a late RecoverDeadClient from
//     rolling already-replayed pages backwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/lbc/client.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/rvm/log_index.h"
#include "src/rvm/log_io.h"
#include "src/rvm/log_merge.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/replay_on_demand.h"
#include "src/rvm/scrub.h"
#include "src/store/corrupting_store.h"
#include "src/store/mem_store.h"
#include "src/store/replicated_store.h"
#include "src/store/resource_store.h"

namespace {

class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};
const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

uint64_t Counter(const char* name) {
  return obs::MetricsRegistry::Global()->GetCounter(name)->value();
}

std::vector<uint8_t> ReadFile(store::DurableStore* store, const std::string& name) {
  auto file = std::move(*store->Open(name, /*create=*/false));
  std::vector<uint8_t> bytes(*file->Size());
  if (!bytes.empty()) {
    EXPECT_TRUE(file->ReadExact(0, bytes.data(), bytes.size()).ok());
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Shared two-region workload over a plain MemStore cluster
// ---------------------------------------------------------------------------

constexpr rvm::RegionId kRegionA = 1;
constexpr rvm::RegionId kRegionB = 2;
constexpr uint64_t kPagesA = 3;
constexpr uint64_t kPagesB = 2;
constexpr uint64_t kLenA = kPagesA * rvm::kDbPageSize;
constexpr uint64_t kLenB = kPagesB * rvm::kDbPageSize;
constexpr rvm::LockId kLockA1 = 101;  // region A, manager 1
constexpr rvm::LockId kLockA2 = 102;  // region A, manager 2
constexpr rvm::LockId kLockB1 = 103;  // region B, manager 1
constexpr rvm::LockId kLockB2 = 104;  // region B, manager 2

struct Fixture {
  Fixture() : cluster(std::make_unique<lbc::Cluster>(&mem)) {
    cluster->DefineLock(kLockA1, kRegionA, 1);
    cluster->DefineLock(kLockA2, kRegionA, 2);
    cluster->DefineLock(kLockB1, kRegionB, 1);
    cluster->DefineLock(kLockB2, kRegionB, 2);
    expected_a.assign(kLenA, 0);
    expected_b.assign(kLenB, 0);
  }

  // Two clients commit full-page and straddling partial-page patterns into
  // both regions, then detach. Every write is mirrored into expected_a/_b,
  // so the fixture always knows the byte-exact committed images.
  void CommitWorkload() {
    auto a = std::move(*lbc::Client::Create(cluster.get(), 1, {}));
    auto b = std::move(*lbc::Client::Create(cluster.get(), 2, {}));
    ASSERT_TRUE(a->MapRegion(kRegionA, kLenA).ok());
    ASSERT_TRUE(b->MapRegion(kRegionA, kLenA).ok());
    ASSERT_TRUE(a->MapRegion(kRegionB, kLenB).ok());
    ASSERT_TRUE(b->MapRegion(kRegionB, kLenB).ok());
    auto commit = [&](lbc::Client* c, rvm::LockId lock, rvm::RegionId region,
                      uint64_t offset, uint64_t len, uint8_t fill) {
      lbc::Transaction txn = c->Begin();
      ASSERT_TRUE(txn.Acquire(lock).ok());
      ASSERT_TRUE(txn.SetRange(region, offset, len).ok());
      std::memset(c->GetRegion(region)->data() + offset, fill, len);
      ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
      auto& expected = region == kRegionA ? expected_a : expected_b;
      std::memset(expected.data() + offset, fill, len);
    };
    commit(a.get(), kLockA1, kRegionA, 0 * rvm::kDbPageSize, rvm::kDbPageSize, 0x11);
    commit(b.get(), kLockA2, kRegionA, 1 * rvm::kDbPageSize, rvm::kDbPageSize, 0x22);
    commit(a.get(), kLockA1, kRegionA, 2 * rvm::kDbPageSize, rvm::kDbPageSize, 0x33);
    commit(b.get(), kLockA2, kRegionA, 8000, 400, 0x44);  // page 0/1 straddle
    commit(a.get(), kLockB1, kRegionB, 0, rvm::kDbPageSize, 0x55);
    commit(b.get(), kLockB2, kRegionB, rvm::kDbPageSize + 100, 200, 0x66);
    ASSERT_TRUE(a->WaitForAppliedSeq(kLockA2, 2, 5000));
    ASSERT_TRUE(b->WaitForAppliedSeq(kLockA1, 2, 5000));
    a.reset();
    b.reset();
  }

  store::MemStore mem;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<uint8_t> expected_a;
  std::vector<uint8_t> expected_b;
};

// ---------------------------------------------------------------------------
// 1. The index mirrors the merged history
// ---------------------------------------------------------------------------

TEST(LogIndex, MirrorsMergedHistory) {
  Fixture fx;
  fx.CommitWorkload();
  const std::vector<std::string> logs = {rvm::LogFileName(1), rvm::LogFileName(2)};

  auto built = rvm::LogIndex::Build(&fx.mem, logs);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto merged = rvm::MergeLogs(&fx.mem, logs);
  ASSERT_TRUE(merged.ok());
  rvm::LogIndex from_merged = rvm::LogIndex::FromMerged(*merged);

  // Same history, same pages, same per-lock and per-node maxima.
  EXPECT_EQ(merged->size(), built->transactions().size());
  EXPECT_EQ(from_merged.Pages(), built->Pages());
  EXPECT_EQ(from_merged.MaxLockSeq(), built->MaxLockSeq());
  EXPECT_EQ(5u, built->page_count());  // A:{0,1,2} + B:{0,1}
  EXPECT_EQ((std::vector<uint64_t>{0, 1, 2}), built->PagesOf(kRegionA));
  EXPECT_EQ((std::vector<uint64_t>{0, 1}), built->PagesOf(kRegionB));
  EXPECT_TRUE(built->PagesOf(99).empty());

  // Per-lock maxima match the workload's acquire counts.
  EXPECT_EQ(2u, built->MaxLockSeq().at(kLockA1));
  EXPECT_EQ(2u, built->MaxLockSeq().at(kLockA2));
  EXPECT_EQ(1u, built->MaxLockSeq().at(kLockB1));
  EXPECT_EQ(1u, built->MaxLockSeq().at(kLockB2));
  EXPECT_GT(built->MaxCommitSeq(1), 0u);
  EXPECT_EQ(0u, built->MaxCommitSeq(99));

  // The straddling commit shows up on both pages it touches; untouched
  // pages have no slice list at all.
  ASSERT_NE(nullptr, built->SlicesFor(kRegionA, 0));
  ASSERT_NE(nullptr, built->SlicesFor(kRegionA, 1));
  EXPECT_EQ(nullptr, built->SlicesFor(kRegionA, 3));
  EXPECT_EQ(nullptr, built->SlicesFor(99, 0));

  // Per-page slice lists preserve merged order (monotone transaction
  // indexes), so replaying a page's slices alone is order-correct.
  for (const auto& key : built->Pages()) {
    const auto* slices = built->SlicesFor(key.first, key.second);
    ASSERT_NE(nullptr, slices);
    ASSERT_FALSE(slices->empty());
    for (size_t i = 1; i < slices->size(); ++i) {
      EXPECT_LE((*slices)[i - 1].txn, (*slices)[i].txn);
    }
  }
}

TEST(LogIndex, ExtendDedupsByCommitSeq) {
  Fixture fx;
  fx.CommitWorkload();
  auto built =
      rvm::LogIndex::Build(&fx.mem, {rvm::LogFileName(1), rvm::LogFileName(2)});
  ASSERT_TRUE(built.ok());
  rvm::LogIndex index = std::move(*built);
  const uint64_t pages_before = index.page_count();

  // Re-merging an already indexed log must be a no-op.
  auto merged = rvm::MergeLogs(&fx.mem, {rvm::LogFileName(2)});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(index.Extend(*merged).empty());
  EXPECT_EQ(pages_before, index.page_count());

  // A genuinely new record (fresh commit_seq) is indexed and reports the
  // page it touches — including a page the index has never seen.
  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = index.MaxCommitSeq(2) + 1;
  rec.locks.push_back({kLockA2, 3});
  rvm::RangeImage range;
  range.region = kRegionB;
  range.offset = rvm::kDbPageSize + 10;
  range.data.assign(16, 0x5A);
  rec.ranges.push_back(range);
  std::vector<rvm::LogIndex::PageKey> touched = index.Extend({rec});
  ASSERT_EQ(1u, touched.size());
  EXPECT_EQ(rvm::LogIndex::PageKey(kRegionB, 1), touched[0]);
  EXPECT_EQ(3u, index.MaxLockSeq().at(kLockA2));

  // And feeding the same record again dedups against the raised maximum.
  EXPECT_TRUE(index.Extend({rec}).empty());
}

// ---------------------------------------------------------------------------
// 2. Serve before the drain finishes; byte-identical to eager afterwards
// ---------------------------------------------------------------------------

TEST(IncrementalRecovery, ServesBeforeDrainThenMatchesEagerByteForByte) {
  // Twin clusters, identical workload: one restarts eagerly (the reference
  // bytes), one incrementally.
  Fixture eager;
  eager.CommitWorkload();
  eager.cluster->KillServer();
  ASSERT_TRUE(eager.cluster->RestartServer().ok());
  ASSERT_FALSE(eager.cluster->RecoveryActive());  // eager mode has no window

  Fixture incr;
  incr.CommitWorkload();
  incr.cluster->KillServer();
  incr.cluster->SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);

  const uint64_t on_demand_before = Counter("recovery.pages_on_demand");
  const uint64_t background_before = Counter("recovery.pages_background");

  {
    // Holding the database-writer lock freezes all page materialization, so
    // the serving-while-unreplayed window is observable deterministically.
    base::MutexLock stall(incr.cluster->DbMutex());
    ASSERT_TRUE(incr.cluster->RestartServer().ok());
    EXPECT_TRUE(incr.cluster->ServerUp());
    EXPECT_TRUE(incr.cluster->RecoveryActive());
    EXPECT_EQ(kPagesA + kPagesB, incr.cluster->RecoveryPendingPages());
    // The directory is already rebuilt — baselines match the eager twin
    // before a single page has been replayed.
    for (rvm::LockId lock : {kLockA1, kLockA2, kLockB1, kLockB2}) {
      EXPECT_EQ(eager.cluster->BaselineSeq(lock), incr.cluster->BaselineSeq(lock));
    }
  }

  // First touch: a fresh client maps region A while region B may still be
  // pending; the fetch must already return the committed bytes.
  auto c = std::move(*lbc::Client::Create(incr.cluster.get(), 3, {}));
  auto mapped = c->MapRegion(kRegionA, kLenA);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(0, std::memcmp((*mapped)->data(), incr.expected_a.data(), kLenA));

  // Drain the rest and retire the recovery.
  ASSERT_TRUE(incr.cluster->DrainRecovery().ok());
  EXPECT_FALSE(incr.cluster->RecoveryActive());
  EXPECT_EQ(0u, incr.cluster->RecoveryPendingPages());

  // Steady state after the drain is byte-identical to eager replay:
  // database files AND checksum sidecars.
  for (rvm::RegionId region : {kRegionA, kRegionB}) {
    EXPECT_EQ(ReadFile(&eager.mem, rvm::RegionFileName(region)),
              ReadFile(&incr.mem, rvm::RegionFileName(region)))
        << "region " << region;
    EXPECT_EQ(ReadFile(&eager.mem, rvm::ChecksumFileName(region)),
              ReadFile(&incr.mem, rvm::ChecksumFileName(region)))
        << "sidecar " << region;
  }
  EXPECT_EQ(incr.expected_a, ReadFile(&incr.mem, rvm::RegionFileName(kRegionA)));
  EXPECT_EQ(incr.expected_b, ReadFile(&incr.mem, rvm::RegionFileName(kRegionB)));

  // Every indexed page was materialized exactly once, split between the
  // first-touch path and the drainer.
  EXPECT_EQ(kPagesA + kPagesB, (Counter("recovery.pages_on_demand") -
                                on_demand_before) +
                                   (Counter("recovery.pages_background") -
                                    background_before));
}

// ---------------------------------------------------------------------------
// 3. op_deadline_ms bounds the first-touch wait
// ---------------------------------------------------------------------------

TEST(IncrementalRecovery, MapRegionDeadlineBoundsWaitOnInFlightPage) {
  Fixture fx;
  fx.CommitWorkload();
  fx.cluster->KillServer();
  fx.cluster->SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);

  std::unique_ptr<lbc::Client> c;
  std::thread claimant;
  {
    // Freeze page replay: claimants mark pages in-progress, then block on
    // the database-writer lock we hold.
    base::MutexLock stall(fx.cluster->DbMutex());
    ASSERT_TRUE(fx.cluster->RestartServer().ok());
    claimant = std::thread([&fx] {
      base::IgnoreError(fx.cluster->EnsureRegionRecovered(kRegionA));
    });
    // Let the claimant (or the background drainer) claim region A's pages.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));

    lbc::ClientOptions opts;
    opts.op_deadline_ms = 100;
    c = std::move(*lbc::Client::Create(fx.cluster.get(), 3, opts));
    auto mapped = c->MapRegion(kRegionA, kLenA);
    ASSERT_FALSE(mapped.ok()) << "map served while every page was frozen";
    EXPECT_EQ(base::StatusCode::kDeadlineExceeded, mapped.status().code());
    EXPECT_EQ(1u, c->stats().deadline_misses);
  }
  claimant.join();

  // The client survived the miss: the same map succeeds once the stall is
  // gone, and serves the committed bytes.
  auto mapped = c->MapRegion(kRegionA, kLenA);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(0, std::memcmp((*mapped)->data(), fx.expected_a.data(), kLenA));
  ASSERT_TRUE(fx.cluster->DrainRecovery().ok());
}

// ---------------------------------------------------------------------------
// 4. Lazily discovered rot fails certification and routes through the
//    scrubber — it is never replayed over
// ---------------------------------------------------------------------------

TEST(IncrementalRecovery, FirstTouchRotRoutesThroughScrubber) {
  constexpr rvm::RegionId kRegion = 7;
  constexpr uint64_t kPages = 3;
  constexpr uint64_t kLen = kPages * rvm::kDbPageSize;

  store::MemStore backends[2];
  std::vector<std::unique_ptr<store::CorruptionInjectingStore>> corrupt;
  corrupt.emplace_back(new store::CorruptionInjectingStore(&backends[0], 0xC0FFEE));
  corrupt.emplace_back(new store::CorruptionInjectingStore(&backends[1], 0xDECAF));
  store::ReplicatedStore replicated(
      std::vector<store::DurableStore*>{corrupt[0].get(), corrupt[1].get()});
  lbc::Cluster cluster(&replicated);
  cluster.DefineLock(200, kRegion, 1);
  cluster.DefineLock(201, kRegion, 3);
  rvm::Scrubber scrubber(&replicated, &replicated);
  cluster.SetScrubber(&scrubber);

  std::vector<uint8_t> expected(kLen, 0);
  auto commit = [&](lbc::Client* c, rvm::LockId lock, uint64_t offset,
                    uint64_t len, uint8_t fill) {
    lbc::Transaction txn = c->Begin();
    ASSERT_TRUE(txn.Acquire(lock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, offset, len).ok());
    std::memset(c->GetRegion(kRegion)->data() + offset, fill, len);
    ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
    std::memset(expected.data() + offset, fill, len);
  };

  // Phase 1: full coverage, replayed and TRIMMED — the resulting database
  // pages and sidecar entries are the only copy of these bytes, so later
  // partial-page replay genuinely depends on certified pre-images.
  {
    auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
    ASSERT_TRUE(a->MapRegion(kRegion, kLen).ok());
    for (uint64_t page = 0; page < kPages; ++page) {
      commit(a.get(), 200, page * rvm::kDbPageSize, rvm::kDbPageSize,
             static_cast<uint8_t>(0x10 + page));
    }
  }
  ASSERT_TRUE(cluster.RecoverAndTrim({1}).ok());

  // Phase 2: partial-page updates from a fresh node — the only records a
  // boot index will hold.
  {
    auto b = std::move(*lbc::Client::Create(&cluster, 3, {}));
    ASSERT_TRUE(b->MapRegion(kRegion, kLen).ok());
    commit(b.get(), 201, 1 * rvm::kDbPageSize + 3000, 100, 0x77);
    commit(b.get(), 201, 2 * rvm::kDbPageSize + 100, 50, 0x88);
  }

  cluster.KillServer();
  cluster.SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);
  const uint64_t failures_before = Counter("integrity.verify_failures");
  const uint64_t repaired_before = Counter("scrub.repaired_from_replica");
  const std::string db = rvm::RegionFileName(kRegion);
  {
    base::MutexLock stall(cluster.DbMutex());
    ASSERT_TRUE(cluster.RestartServer().ok());
    EXPECT_EQ(2u, cluster.RecoveryPendingPages());  // pages 1 and 2 only
    // Rot replica 0's pre-image of page 1, outside the pending redo range.
    // Reads are served replica-0-first, so the first materialization MUST
    // see the damage — and must refuse to certify, not replay over it.
    ASSERT_TRUE(corrupt[0]->FlipBit(db, 1 * rvm::kDbPageSize + 7000, 3).ok());
  }

  // First touch discovers the rot; the fetch path repairs via the scrubber
  // (replica 1 is clean) and retries, so the client still maps cleanly.
  auto c = std::move(*lbc::Client::Create(&cluster, 5, {}));
  auto mapped = c->MapRegion(kRegion, kLen);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(0, std::memcmp((*mapped)->data(), expected.data(), kLen));
  EXPECT_GE(Counter("integrity.verify_failures"), failures_before + 1);
  EXPECT_GE(Counter("scrub.repaired_from_replica"), repaired_before + 1);

  ASSERT_TRUE(cluster.DrainRecovery().ok());
  EXPECT_FALSE(cluster.RecoveryActive());
  EXPECT_EQ(expected, ReadFile(&backends[0], db));
  EXPECT_EQ(expected, ReadFile(&backends[1], db));
  std::vector<uint8_t> image = ReadFile(&replicated, db);
  auto failed = rvm::VerifyImagePages(&replicated, kRegion, image.data(),
                                      image.size(), image.size());
  ASSERT_TRUE(failed.ok());
  EXPECT_TRUE(failed->empty());
}

// ---------------------------------------------------------------------------
// 5. Dead-client recovery no longer starves the heartbeat thread
// ---------------------------------------------------------------------------

TEST(IncrementalRecovery, DeadClientRecoveryKeepsHeartbeatsFlowing) {
  constexpr rvm::RegionId kRegion = 9;
  constexpr uint64_t kPages = 12;
  constexpr uint64_t kLen = kPages * rvm::kDbPageSize;
  constexpr rvm::LockId kLock = 210;

  store::MemStore mem;
  store::ResourceStore store(&mem);  // slow-disk injection surface
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  cluster.SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);

  auto survivor = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(survivor->MapRegion(kRegion, kLen).ok());
  std::vector<uint8_t> expected(kLen, 0);
  {
    auto victim = std::move(*lbc::Client::Create(&cluster, 2, {}));
    ASSERT_TRUE(victim->MapRegion(kRegion, kLen).ok());
    for (uint64_t page = 0; page < kPages; ++page) {
      lbc::Transaction txn = victim->Begin();
      ASSERT_TRUE(txn.Acquire(kLock).ok());
      ASSERT_TRUE(txn.SetRange(kRegion, page * rvm::kDbPageSize, rvm::kDbPageSize).ok());
      uint8_t fill = static_cast<uint8_t>(0xA0 + page);
      std::memset(victim->GetRegion(kRegion)->data() + page * rvm::kDbPageSize, fill,
                  rvm::kDbPageSize);
      ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
      std::memset(expected.data() + page * rvm::kDbPageSize, fill, rvm::kDbPageSize);
    }
    victim->Disconnect();
  }

  // Every database-file I/O now costs 25 ms. An eager RecoverDeadClient
  // would replay all 12 pages synchronously on the calling thread (several
  // I/Os per page — well over a second); the incremental path only reads
  // the log, which is not delayed.
  store.InjectLatency(rvm::RegionFileName(kRegion), 25'000'000, 0);

  // Emulate the survivor's heartbeat thread: beat every 20 ms, handle the
  // peer death inline (exactly what HeartbeatThreadMain does), keep
  // beating. The longest inter-beat gap brackets the recovery call.
  std::chrono::steady_clock::duration max_gap{0};
  std::thread heartbeat([&] {
    auto last = std::chrono::steady_clock::now();
    auto beat = [&] {
      cluster.NoteAlive(1);
      auto now = std::chrono::steady_clock::now();
      max_gap = std::max(max_gap, now - last);
      last = now;
    };
    for (int i = 0; i < 5; ++i) {
      beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(survivor->OnPeerDeath(2).ok());
    for (int i = 0; i < 5; ++i) {
      beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  heartbeat.join();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(max_gap).count(),
            300)
      << "dead-client recovery starved the heartbeat thread";

  // The deferred replay still lands everything: drain, then check the
  // durable image and the rebuilt baseline.
  ASSERT_TRUE(cluster.DrainRecovery().ok());
  EXPECT_EQ(kPages, cluster.BaselineSeq(kLock));
  EXPECT_EQ(expected, ReadFile(&mem, rvm::RegionFileName(kRegion)));
}

// ---------------------------------------------------------------------------
// 6. A late RecoverDeadClient dedups records boot recovery already merged
// ---------------------------------------------------------------------------

TEST(IncrementalRecovery, LateDeadClientRecoveryDedupsBootRecords) {
  constexpr rvm::RegionId kRegion = 11;
  constexpr uint64_t kLen = rvm::kDbPageSize;
  constexpr rvm::LockId kSurvivorLock = 301;  // manager 1
  constexpr rvm::LockId kVictimLock = 302;    // manager 2

  store::MemStore mem;
  lbc::Cluster cluster(&mem);
  cluster.DefineLock(kSurvivorLock, kRegion, 1);
  cluster.DefineLock(kVictimLock, kRegion, 2);

  auto survivor = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(survivor->MapRegion(kRegion, kLen).ok());
  {
    auto victim = std::move(*lbc::Client::Create(&cluster, 2, {}));
    ASSERT_TRUE(victim->MapRegion(kRegion, kLen).ok());
    for (int i = 0; i < 3; ++i) {
      lbc::Transaction txn = victim->Begin();
      ASSERT_TRUE(txn.Acquire(kVictimLock).ok());
      ASSERT_TRUE(txn.SetRange(kRegion, 0, kLen).ok());
      std::memset(victim->GetRegion(kRegion)->data(), 0xAA, kLen);
      ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
    }
    ASSERT_TRUE(survivor->WaitForAppliedSeq(kVictimLock, 3, 5000));
    victim->Disconnect();
  }

  // Boot recovery indexes and drains the victim's records.
  cluster.KillServer();
  cluster.SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);
  ASSERT_TRUE(cluster.RestartServer().ok());
  ASSERT_TRUE(survivor->RejoinServer().ok());
  ASSERT_TRUE(cluster.DrainRecovery().ok());

  // A NEWER overlapping write replays over half the page.
  {
    lbc::Transaction txn = survivor->Begin();
    ASSERT_TRUE(txn.Acquire(kSurvivorLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, kLen / 2).ok());
    std::memset(survivor->GetRegion(kRegion)->data(), 0xBB, kLen / 2);
    ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
  }
  survivor.reset();
  ASSERT_TRUE(cluster.ReplayAndRecordBaselines({rvm::LogFileName(1)}).ok());
  const std::vector<uint8_t> gold = ReadFile(&mem, rvm::RegionFileName(kRegion));
  ASSERT_EQ(uint8_t{0xBB}, gold[0]);
  ASSERT_EQ(uint8_t{0xAA}, gold[kLen / 2]);

  // The failure detector finally notices the long-dead victim. Its log is
  // entirely boot-time records: re-pending them would replay 0xAA over the
  // newer 0xBB half. The dedup bound must make this a no-op.
  ASSERT_TRUE(cluster.RecoverDeadClient(2).ok());
  EXPECT_FALSE(cluster.RecoveryActive());
  ASSERT_TRUE(cluster.DrainRecovery().ok());
  EXPECT_EQ(gold, ReadFile(&mem, rvm::RegionFileName(kRegion)));
}

}  // namespace
