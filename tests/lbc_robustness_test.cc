// Robustness: corrupt and adversarial message handling. Decoders must fail
// cleanly (no crash, no partial state) on arbitrary bytes, and a live
// client's receiver thread must survive garbage traffic.
#include <gtest/gtest.h>

#include <thread>

#include <cstring>

#include "src/base/rng.h"
#include "src/lbc/client.h"
#include "src/lbc/wire_format.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

// Property: decoding random bytes never crashes and either fails or yields
// a structurally sane record.
class FuzzDecodeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDecodeTest, RandomBytesNeverCrashDecoders) {
  base::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.Uniform(200);
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Next());
    }
    base::ByteSpan span(junk.data(), junk.size());
    (void)lbc::PeekMsgType(span);
    rvm::TransactionRecord rec;
    (void)lbc::DecodeUpdate(span, &rec);
    lbc::LockRequestMsg req;
    (void)lbc::DecodeLockRequest(span, &req);
    lbc::LockForwardMsg fwd;
    (void)lbc::DecodeLockForward(span, &fwd);
    lbc::LockTokenMsg token;
    (void)lbc::DecodeLockToken(span, &token);
  }
}

TEST_P(FuzzDecodeTest, MutatedValidUpdatesNeverCrash) {
  base::Rng rng(GetParam());
  rvm::TransactionRecord txn;
  txn.node = 1;
  txn.commit_seq = 1;
  txn.locks = {{1, 1}};
  for (int i = 0; i < 5; ++i) {
    txn.ranges.push_back({1, static_cast<uint64_t>(i) * 1000,
                          std::vector<uint8_t>(32, static_cast<uint8_t>(i))});
  }
  std::vector<uint8_t> valid = lbc::EncodeUpdateRecord(txn, true);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = valid;
    // Flip a few random bytes and/or truncate.
    for (int flips = 0; flips < 3; ++flips) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    if (rng.Chance(1, 3)) {
      mutated.resize(rng.Uniform(mutated.size() + 1));
    }
    rvm::TransactionRecord out;
    (void)lbc::DecodeUpdate(base::ByteSpan(mutated.data(), mutated.size()), &out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest, ::testing::Range<uint64_t>(0, 6));

TEST(Robustness, LiveClientSurvivesGarbageTraffic) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 8192).ok());

  // A rogue endpoint floods client B with junk of every flavor.
  netsim::Endpoint* rogue = cluster.fabric()->AddNode(99);
  base::Rng rng(0xBAD);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> junk(rng.Uniform(64));
    for (auto& byte : junk) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    ASSERT_TRUE(rogue->Send(2, std::move(junk)).ok());
  }

  // The protocol still works end to end.
  {
    lbc::Transaction txn = a->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 5).ok());
    std::memcpy(a->GetRegion(kRegion)->data(), "alive", 5);
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_EQ(0, std::memcmp(b->GetRegion(kRegion)->data(), "alive", 5));
}

TEST(Robustness, UpdateForUnknownLockIsTolerated) {
  // An update naming an undefined lock must not wedge the receiver: the
  // lock's region cannot be resolved, so the dimension is ignored.
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{9999, 5}};  // undefined lock
  rec.ranges.push_back({kRegion, 0, {42}});
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, lbc::EncodeUpdateRecord(rec, true)).ok());

  // The range still applies (last-writer-wins for unsynchronized data).
  for (int i = 0; i < 1000 && a->GetRegion(kRegion)->data()[0] != 42; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(42, a->GetRegion(kRegion)->data()[0]);
}

TEST(Robustness, UpdateForUnmappedRegionDropsBytesOnly) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{kLock, 1}};
  rec.ranges.push_back({/*region=*/77, 0, {1, 2, 3}});  // not mapped at A
  rec.ranges.push_back({kRegion, 10, {9}});
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, lbc::EncodeUpdateRecord(rec, true)).ok());

  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_EQ(9, a->GetRegion(kRegion)->data()[10]);
}

TEST(Robustness, DuplicateUpdateIsIdempotent) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{kLock, 1}};
  rec.ranges.push_back({kRegion, 0, {5}});
  auto payload = lbc::EncodeUpdateRecord(rec, true);
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, payload).ok());
  ASSERT_TRUE(peer->Send(1, payload).ok());  // retransmission

  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 1, 5000));
  for (int i = 0; i < 200 && a->stats().updates_duplicate == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(1u, a->stats().updates_applied);
  EXPECT_EQ(1u, a->stats().updates_duplicate);
  EXPECT_EQ(1u, a->AppliedSeq(kLock));
}

}  // namespace
