// Robustness: corrupt and adversarial message handling. Decoders must fail
// cleanly (no crash, no partial state) on arbitrary bytes, and a live
// client's receiver thread must survive garbage traffic.
#include <gtest/gtest.h>

#include <thread>

#include <cstring>

#include "src/base/rng.h"
#include "src/lbc/client.h"
#include "src/lbc/wire_format.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

// Property: decoding random bytes never crashes and either fails or yields
// a structurally sane record.
class FuzzDecodeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDecodeTest, RandomBytesNeverCrashDecoders) {
  base::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.Uniform(200);
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Next());
    }
    base::ByteSpan span(junk.data(), junk.size());
    (void)lbc::PeekMsgType(span);
    rvm::TransactionRecord rec;
    (void)lbc::DecodeUpdate(span, &rec);
    lbc::LockRequestMsg req;
    (void)lbc::DecodeLockRequest(span, &req);
    lbc::LockForwardMsg fwd;
    (void)lbc::DecodeLockForward(span, &fwd);
    lbc::LockTokenMsg token;
    (void)lbc::DecodeLockToken(span, &token);
    lbc::LockRevokeMsg revoke;
    (void)lbc::DecodeLockRevoke(span, &revoke);
    lbc::LockRevokeReplyMsg reply;
    (void)lbc::DecodeLockRevokeReply(span, &reply);
  }
}

TEST_P(FuzzDecodeTest, MutatedValidUpdatesNeverCrash) {
  base::Rng rng(GetParam());
  rvm::TransactionRecord txn;
  txn.node = 1;
  txn.commit_seq = 1;
  txn.locks = {{1, 1}};
  for (int i = 0; i < 5; ++i) {
    txn.ranges.push_back({1, static_cast<uint64_t>(i) * 1000,
                          std::vector<uint8_t>(32, static_cast<uint8_t>(i))});
  }
  std::vector<uint8_t> valid = lbc::EncodeUpdateRecord(txn, true);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = valid;
    // Flip a few random bytes and/or truncate.
    for (int flips = 0; flips < 3; ++flips) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    if (rng.Chance(1, 3)) {
      mutated.resize(rng.Uniform(mutated.size() + 1));
    }
    rvm::TransactionRecord out;
    (void)lbc::DecodeUpdate(base::ByteSpan(mutated.data(), mutated.size()), &out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest, ::testing::Range<uint64_t>(0, 6));

// Property: encode -> decode is the identity for every wire message type,
// across randomized field values (including the varint edge values around
// 2^7k and the compressed/uncompressed header modes).
class RoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Values that stress every varint width.
  uint64_t AnyU64(base::Rng& rng) {
    switch (rng.Uniform(4)) {
      case 0: return rng.Uniform(2);                      // 0 / 1
      case 1: return 120 + rng.Uniform(16);               // 1-2 byte boundary
      case 2: return rng.Uniform(1u << 20);               // mid-size
      default: return rng.Next();                         // full 64-bit
    }
  }

  rvm::TransactionRecord AnyRecord(base::Rng& rng) {
    rvm::TransactionRecord rec;
    rec.node = 1 + rng.Uniform(100);
    rec.commit_seq = AnyU64(rng);
    size_t nlocks = 1 + rng.Uniform(3);
    for (size_t i = 0; i < nlocks; ++i) {
      rec.locks.push_back({1 + rng.Uniform(50), AnyU64(rng)});
    }
    // Ranges sorted by (region, offset), as the commit path produces them:
    // exercises both delta and absolute address headers.
    uint64_t offset = rng.Uniform(1 << 16);
    size_t nranges = rng.Uniform(5);
    for (size_t i = 0; i < nranges; ++i) {
      rvm::RangeImage img;
      img.region = 1;
      img.offset = offset;
      img.data.resize(1 + rng.Uniform(rng.Chance(1, 4) ? 8192 : 64));
      for (auto& b : img.data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      rec.ranges.push_back(std::move(img));
      // Sometimes jump past the 256 KB near-range bound to force an
      // absolute header mid-message.
      offset += rec.ranges.back().data.size() +
                (rng.Chance(1, 3) ? lbc::kNearRangeBound + 1 : 1 + rng.Uniform(4096));
    }
    return rec;
  }
};

TEST_P(RoundTripTest, UpdateRecord) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 1);
  for (int i = 0; i < 50; ++i) {
    rvm::TransactionRecord rec = AnyRecord(rng);
    for (bool compress : {true, false}) {
      auto payload = lbc::EncodeUpdateRecord(rec, compress);
      auto type = lbc::PeekMsgType(base::ByteSpan(payload.data(), payload.size()));
      ASSERT_TRUE(type.ok());
      EXPECT_EQ(lbc::MsgType::kUpdate, *type);
      rvm::TransactionRecord out;
      ASSERT_TRUE(
          lbc::DecodeUpdate(base::ByteSpan(payload.data(), payload.size()), &out).ok());
      EXPECT_EQ(rec.node, out.node);
      EXPECT_EQ(rec.commit_seq, out.commit_seq);
      EXPECT_EQ(rec.locks, out.locks);
      EXPECT_EQ(rec.ranges, out.ranges);
    }
  }
}

TEST_P(RoundTripTest, LockRequest) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 2);
  for (int i = 0; i < 200; ++i) {
    lbc::LockRequestMsg msg{1 + rng.Uniform(50),
                            static_cast<rvm::NodeId>(1 + rng.Uniform(100)), AnyU64(rng),
                            AnyU64(rng)};
    auto payload = lbc::EncodeLockRequest(msg);
    lbc::LockRequestMsg out;
    ASSERT_TRUE(
        lbc::DecodeLockRequest(base::ByteSpan(payload.data(), payload.size()), &out).ok());
    EXPECT_EQ(msg, out);
  }
}

TEST_P(RoundTripTest, LockForward) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 3);
  for (int i = 0; i < 200; ++i) {
    lbc::LockForwardMsg msg{1 + rng.Uniform(50),
                            static_cast<rvm::NodeId>(1 + rng.Uniform(100)), AnyU64(rng),
                            AnyU64(rng)};
    auto payload = lbc::EncodeLockForward(msg);
    lbc::LockForwardMsg out;
    ASSERT_TRUE(
        lbc::DecodeLockForward(base::ByteSpan(payload.data(), payload.size()), &out).ok());
    EXPECT_EQ(msg, out);
  }
}

TEST_P(RoundTripTest, LockTokenWithPiggyback) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 4);
  for (int i = 0; i < 30; ++i) {
    lbc::LockTokenMsg msg;
    msg.lock = 1 + rng.Uniform(50);
    msg.token_seq = AnyU64(rng);
    msg.epoch = AnyU64(rng);
    size_t npiggy = rng.Uniform(4);
    for (size_t p = 0; p < npiggy; ++p) {
      msg.piggyback.push_back(AnyRecord(rng));
    }
    for (bool compress : {true, false}) {
      auto payload = lbc::EncodeLockToken(msg, compress);
      lbc::LockTokenMsg out;
      ASSERT_TRUE(
          lbc::DecodeLockToken(base::ByteSpan(payload.data(), payload.size()), &out).ok());
      EXPECT_EQ(msg.lock, out.lock);
      EXPECT_EQ(msg.token_seq, out.token_seq);
      EXPECT_EQ(msg.epoch, out.epoch);
      ASSERT_EQ(msg.piggyback.size(), out.piggyback.size());
      for (size_t p = 0; p < npiggy; ++p) {
        EXPECT_EQ(msg.piggyback[p].node, out.piggyback[p].node);
        EXPECT_EQ(msg.piggyback[p].commit_seq, out.piggyback[p].commit_seq);
        EXPECT_EQ(msg.piggyback[p].locks, out.piggyback[p].locks);
        EXPECT_EQ(msg.piggyback[p].ranges, out.piggyback[p].ranges);
      }
    }
  }
}

TEST_P(RoundTripTest, LockRevoke) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 5);
  for (int i = 0; i < 200; ++i) {
    lbc::LockRevokeMsg msg{1 + rng.Uniform(50), AnyU64(rng),
                           static_cast<rvm::NodeId>(1 + rng.Uniform(100))};
    auto payload = lbc::EncodeLockRevoke(msg);
    lbc::LockRevokeMsg out;
    ASSERT_TRUE(
        lbc::DecodeLockRevoke(base::ByteSpan(payload.data(), payload.size()), &out).ok());
    EXPECT_EQ(msg, out);
  }
}

TEST_P(RoundTripTest, LockRevokeReply) {
  base::Rng rng(GetParam() * 0x9E3779B9u + 6);
  for (int i = 0; i < 200; ++i) {
    lbc::LockRevokeReplyMsg msg;
    msg.lock = 1 + rng.Uniform(50);
    msg.epoch = AnyU64(rng);
    msg.node = 1 + rng.Uniform(100);
    msg.holding = rng.Chance(1, 2);
    msg.had_token = rng.Chance(1, 2);
    msg.token_seq = AnyU64(rng);
    msg.applied_seq = AnyU64(rng);
    auto payload = lbc::EncodeLockRevokeReply(msg);
    lbc::LockRevokeReplyMsg out;
    ASSERT_TRUE(
        lbc::DecodeLockRevokeReply(base::ByteSpan(payload.data(), payload.size()), &out)
            .ok());
    EXPECT_EQ(msg, out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range<uint64_t>(0, 4));

TEST(Robustness, LiveClientSurvivesGarbageTraffic) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 8192).ok());

  // A rogue endpoint floods client B with junk of every flavor.
  netsim::Endpoint* rogue = cluster.fabric()->AddNode(99);
  base::Rng rng(0xBAD);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> junk(rng.Uniform(64));
    for (auto& byte : junk) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    ASSERT_TRUE(rogue->Send(2, std::move(junk)).ok());
  }

  // The protocol still works end to end.
  {
    lbc::Transaction txn = a->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 5).ok());
    std::memcpy(a->GetRegion(kRegion)->data(), "alive", 5);
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_EQ(0, std::memcmp(b->GetRegion(kRegion)->data(), "alive", 5));
}

TEST(Robustness, UpdateForUnknownLockIsTolerated) {
  // An update naming an undefined lock must not wedge the receiver: the
  // lock's region cannot be resolved, so the dimension is ignored.
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{9999, 5}};  // undefined lock
  rec.ranges.push_back({kRegion, 0, {42}});
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, lbc::EncodeUpdateRecord(rec, true)).ok());

  // The range still applies (last-writer-wins for unsynchronized data).
  for (int i = 0; i < 1000 && a->GetRegion(kRegion)->data()[0] != 42; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(42, a->GetRegion(kRegion)->data()[0]);
}

TEST(Robustness, UpdateForUnmappedRegionDropsBytesOnly) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{kLock, 1}};
  rec.ranges.push_back({/*region=*/77, 0, {1, 2, 3}});  // not mapped at A
  rec.ranges.push_back({kRegion, 10, {9}});
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, lbc::EncodeUpdateRecord(rec, true)).ok());

  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_EQ(9, a->GetRegion(kRegion)->data()[10]);
}

TEST(Robustness, DuplicateUpdateIsIdempotent) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());

  rvm::TransactionRecord rec;
  rec.node = 2;
  rec.commit_seq = 1;
  rec.locks = {{kLock, 1}};
  rec.ranges.push_back({kRegion, 0, {5}});
  auto payload = lbc::EncodeUpdateRecord(rec, true);
  netsim::Endpoint* peer = cluster.fabric()->AddNode(2);
  ASSERT_TRUE(peer->Send(1, payload).ok());
  ASSERT_TRUE(peer->Send(1, payload).ok());  // retransmission

  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 1, 5000));
  for (int i = 0; i < 200 && a->stats().updates_duplicate == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(1u, a->stats().updates_applied);
  EXPECT_EQ(1u, a->stats().updates_duplicate);
  EXPECT_EQ(1u, a->AppliedSeq(kLock));
}

}  // namespace
