// DurableStore conformance tests run against every implementation (including
// the CrashPointStore decorator over each), plus MemStore-specific crash and
// failure-injection behaviour and CrashPointStore crash-injection tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "src/store/corrupting_store.h"
#include "src/store/crash_point_store.h"
#include "src/store/durable_store.h"
#include "src/store/mem_store.h"
#include "src/store/replicated_store.h"
#include "src/store/resource_store.h"

namespace {

enum class StoreKind {
  kMem,
  kFile,
  kCrashPointMem,
  kCrashPointFile,
  kReplicatedMem,
  kCorruptingMem,
  kResourceMem,
  kResourceFile,
  kResourceReplicated,
};

class StoreConformanceTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    StoreKind kind = GetParam();
    if (kind == StoreKind::kFile || kind == StoreKind::kCrashPointFile ||
        kind == StoreKind::kResourceFile) {
      dir_ = std::filesystem::temp_directory_path() /
             ("lbc_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      backing_ = std::move(*store::OpenFileStore(dir_.string()));
    } else {
      backing_ = std::make_unique<store::MemStore>();
    }
    switch (kind) {
      case StoreKind::kCrashPointMem:
      case StoreKind::kCrashPointFile:
        store_ = std::make_unique<store::CrashPointStore>(backing_.get());
        break;
      case StoreKind::kReplicatedMem:
        backing2_ = std::make_unique<store::MemStore>();
        store_ = std::make_unique<store::ReplicatedStore>(
            std::vector<store::DurableStore*>{backing_.get(), backing2_.get()});
        break;
      case StoreKind::kCorruptingMem:
        store_ = std::make_unique<store::CorruptionInjectingStore>(backing_.get());
        break;
      case StoreKind::kResourceMem:
      case StoreKind::kResourceFile:
        store_ = std::make_unique<store::ResourceStore>(backing_.get());
        break;
      case StoreKind::kResourceReplicated:
        backing2_ = std::make_unique<store::MemStore>();
        inner_ = std::make_unique<store::ReplicatedStore>(
            std::vector<store::DurableStore*>{backing_.get(), backing2_.get()});
        store_ = std::make_unique<store::ResourceStore>(inner_.get());
        break;
      default:
        store_ = std::move(backing_);
        break;
    }
  }

  void TearDown() override {
    store_.reset();
    inner_.reset();
    backing2_.reset();
    backing_.reset();
    if (!dir_.empty()) {
      std::filesystem::remove_all(dir_);
    }
  }

  std::unique_ptr<store::DurableStore> backing_;  // set when store_ decorates
  std::unique_ptr<store::DurableStore> backing2_;  // second replica (replicated kinds)
  std::unique_ptr<store::DurableStore> inner_;    // middle layer (kResourceReplicated)
  std::unique_ptr<store::DurableStore> store_;
  std::filesystem::path dir_;
};

TEST_P(StoreConformanceTest, OpenMissingWithoutCreateFails) {
  auto r = store_->Open("nope", /*create=*/false);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(base::StatusCode::kNotFound, r.status().code());
}

TEST_P(StoreConformanceTest, WriteReadRoundTrip) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("hello", 5)).ok());
  char buf[5];
  ASSERT_TRUE(file->ReadExact(0, buf, 5).ok());
  EXPECT_EQ(0, std::memcmp(buf, "hello", 5));
}

TEST_P(StoreConformanceTest, WriteExtendsFile) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(100, base::AsBytes("x", 1)).ok());
  EXPECT_EQ(101u, *file->Size());
  // The gap reads as zeros.
  char buf[3];
  ASSERT_TRUE(file->ReadExact(50, buf, 3).ok());
  EXPECT_EQ(0, buf[0]);
}

TEST_P(StoreConformanceTest, ReadPastEndIsShort) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("abc", 3)).ok());
  char buf[10];
  EXPECT_EQ(3u, *file->Read(0, buf, 10));
  EXPECT_EQ(0u, *file->Read(3, buf, 10));
  EXPECT_EQ(base::StatusCode::kDataLoss, file->ReadExact(0, buf, 10).code());
}

TEST_P(StoreConformanceTest, AppendReturnsOffset) {
  auto file = std::move(*store_->Open("f", true));
  EXPECT_EQ(0u, *file->Append(base::AsBytes("aaa", 3)));
  EXPECT_EQ(3u, *file->Append(base::AsBytes("bb", 2)));
  EXPECT_EQ(5u, *file->Size());
}

TEST_P(StoreConformanceTest, TruncateShrinks) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("abcdef", 6)).ok());
  ASSERT_TRUE(file->Truncate(2).ok());
  EXPECT_EQ(2u, *file->Size());
}

TEST_P(StoreConformanceTest, ExistsRemoveList) {
  EXPECT_FALSE(*store_->Exists("f"));
  { auto file = std::move(*store_->Open("f", true)); }
  EXPECT_TRUE(*store_->Exists("f"));
  auto names = *store_->List();
  EXPECT_EQ(1u, names.size());
  ASSERT_TRUE(store_->Remove("f").ok());
  EXPECT_FALSE(*store_->Exists("f"));
  // Removing a missing file is not an error (idempotent cleanup).
  EXPECT_TRUE(store_->Remove("f").ok());
}

TEST_P(StoreConformanceTest, RenameMovesContent) {
  {
    auto file = std::move(*store_->Open("a", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store_->Rename("a", "b").ok());
  EXPECT_FALSE(*store_->Exists("a"));
  auto file = std::move(*store_->Open("b", false));
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "data", 4));
}

TEST_P(StoreConformanceTest, SyncDirSucceeds) {
  { auto file = std::move(*store_->Open("f", true)); }
  EXPECT_TRUE(store_->SyncDir().ok());
  ASSERT_TRUE(store_->Rename("f", "g").ok());
  EXPECT_TRUE(store_->SyncDir().ok());
}

INSTANTIATE_TEST_SUITE_P(Impls, StoreConformanceTest,
                         ::testing::Values(StoreKind::kMem, StoreKind::kFile,
                                           StoreKind::kCrashPointMem,
                                           StoreKind::kCrashPointFile,
                                           StoreKind::kReplicatedMem,
                                           StoreKind::kCorruptingMem,
                                           StoreKind::kResourceMem,
                                           StoreKind::kResourceFile,
                                           StoreKind::kResourceReplicated),
                         [](const auto& info) {
                           switch (info.param) {
                             case StoreKind::kMem: return "Mem";
                             case StoreKind::kFile: return "File";
                             case StoreKind::kCrashPointMem: return "CrashPointMem";
                             case StoreKind::kCrashPointFile: return "CrashPointFile";
                             case StoreKind::kReplicatedMem: return "ReplicatedMem";
                             case StoreKind::kCorruptingMem: return "CorruptingMem";
                             case StoreKind::kResourceMem: return "ResourceMem";
                             case StoreKind::kResourceFile: return "ResourceFile";
                             default: return "ResourceReplicated";
                           }
                         });

// --- MemStore crash semantics ----------------------------------------------

TEST(MemStoreCrash, UnsyncedWritesVanish) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("SAFE", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("GONE", 4)).ok());
  store.Crash();
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "SAFE", 4));
}

TEST(MemStoreCrash, TornWriteLeavesPrefix) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("AAAA", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("BBBB", 4)).ok());
  store.Crash(/*torn_bytes=*/2);
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "BBAA", 4));
}

TEST(MemStoreCrash, TornBudgetSpansWritesInOrder) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("11", 2)).ok());
  ASSERT_TRUE(file->Write(2, base::AsBytes("22", 2)).ok());
  ASSERT_TRUE(file->Write(4, base::AsBytes("33", 2)).ok());
  store.Crash(/*torn_bytes=*/3);
  char buf[6] = {0};
  size_t n = *file->Read(0, buf, 6);
  // First write fully survives, second tears after one byte, third is gone.
  ASSERT_GE(n, 3u);
  EXPECT_EQ(0, std::memcmp(buf, "112", 3));
  EXPECT_EQ(3u, n);
}

TEST(MemStoreInjection, FailWritesAfterBudget) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  store.FailWritesAfterBytes(5);
  ASSERT_TRUE(file->Write(0, base::AsBytes("1234", 4)).ok());
  EXPECT_EQ(base::StatusCode::kIoError, file->Write(4, base::AsBytes("5678", 4)).code());
  store.FailWritesAfterBytes(-1);
  EXPECT_TRUE(file->Write(4, base::AsBytes("5678", 4)).ok());
}

TEST(MemStoreStats, CountsBytesAndSyncs) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("12345", 5)).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(5u, store.total_bytes_written());
  EXPECT_EQ(1u, store.sync_count());
}

TEST(MemStore, HandlesSurviveCrash) {
  store::MemStore store;
  auto a = std::move(*store.Open("f", true));
  auto b = std::move(*store.Open("f", true));
  ASSERT_TRUE(a->Write(0, base::AsBytes("x", 1)).ok());
  ASSERT_TRUE(a->Sync().ok());
  store.Crash();
  char c;
  ASSERT_TRUE(b->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('x', c);
}

// --- MemStore namespace durability (real-FS dirent semantics) ---------------

TEST(MemStoreNamespace, UnsyncedCreationVanishesAtCrash) {
  store::MemStore store;
  {
    auto file = std::move(*store.Open("f", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
    // No Sync, no SyncDir: the dirent never reached disk.
  }
  store.Crash();
  EXPECT_FALSE(*store.Exists("f"));
}

TEST(MemStoreNamespace, FileSyncCommitsCreation) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  store.Crash();
  EXPECT_TRUE(*store.Exists("f"));
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "data", 4));
}

TEST(MemStoreNamespace, SyncDirCommitsCreationButNotContent) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
  ASSERT_TRUE(store.SyncDir().ok());
  store.Crash();
  // The name survives (dirent fsynced) but the unsynced bytes do not.
  EXPECT_TRUE(*store.Exists("f"));
  EXPECT_EQ(0u, *file->Size());
}

TEST(MemStoreNamespace, UnsyncedRenameRollsBackAtCrash) {
  store::MemStore store;
  {
    auto file = std::move(*store.Open("a", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("v", 1)).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store.Rename("a", "b").ok());
  store.Crash();
  EXPECT_TRUE(*store.Exists("a"));
  EXPECT_FALSE(*store.Exists("b"));
}

TEST(MemStoreNamespace, SyncDirCommitsRename) {
  store::MemStore store;
  {
    auto file = std::move(*store.Open("a", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("v", 1)).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store.Rename("a", "b").ok());
  ASSERT_TRUE(store.SyncDir().ok());
  store.Crash();
  EXPECT_FALSE(*store.Exists("a"));
  EXPECT_TRUE(*store.Exists("b"));
}

TEST(MemStoreNamespace, FileSyncDoesNotCommitRename) {
  store::MemStore store;
  auto file = std::move(*store.Open("a", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("v", 1)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(store.Rename("a", "b").ok());
  // fsync of the file flushes content but not the parent directory: the
  // rename itself stays volatile (this is what loses a checkpoint swap).
  ASSERT_TRUE(file->Sync().ok());
  store.Crash();
  EXPECT_TRUE(*store.Exists("a"));
  EXPECT_FALSE(*store.Exists("b"));
}

TEST(MemStoreNamespace, UnsyncedRemoveRollsBackAtCrash) {
  store::MemStore store;
  {
    auto file = std::move(*store.Open("f", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("v", 1)).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store.Remove("f").ok());
  EXPECT_FALSE(*store.Exists("f"));
  store.Crash();
  EXPECT_TRUE(*store.Exists("f"));  // unlink never reached disk
}

TEST(MemStoreNamespace, SyncDirCommitsRemove) {
  store::MemStore store;
  {
    auto file = std::move(*store.Open("f", true));
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store.Remove("f").ok());
  ASSERT_TRUE(store.SyncDir().ok());
  store.Crash();
  EXPECT_FALSE(*store.Exists("f"));
}

// --- CrashPointStore --------------------------------------------------------

TEST(CrashPointStore, NumbersMutatingOpsAndLogsKinds) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  auto file = std::move(*cps.Open("f", true));             // op 0: create
  ASSERT_TRUE(file->Write(0, base::AsBytes("x", 1)).ok()); // op 1: write
  ASSERT_TRUE(file->Sync().ok());                          // op 2: sync
  ASSERT_TRUE(file->Append(base::AsBytes("y", 1)).ok());   // op 3: append
  ASSERT_TRUE(file->Truncate(1).ok());                     // op 4: truncate
  ASSERT_TRUE(cps.Rename("f", "g").ok());                  // op 5: rename
  ASSERT_TRUE(cps.SyncDir().ok());                         // op 6: syncdir
  ASSERT_TRUE(cps.Remove("g").ok());                       // op 7: remove
  // Reads, Exists, List, and re-opens of existing files are not mutations.
  { auto again = std::move(*cps.Open("g", true)); }        // op 8: create again
  EXPECT_TRUE(*cps.Exists("g"));
  EXPECT_EQ(9u, cps.op_count());
  using K = store::CrashOpKind;
  std::vector<K> expected = {K::kCreate, K::kWrite,  K::kSync,
                             K::kAppend, K::kTruncate, K::kRename,
                             K::kSyncDir, K::kRemove, K::kCreate};
  EXPECT_EQ(expected, cps.op_kinds());
}

TEST(CrashPointStore, CrashHaltsStoreUntilDisarm) {
  store::MemStore mem;
  bool hook_ran = false;
  store::CrashPointStore cps(&mem);
  cps.SetCrashHook([&] {
    hook_ran = true;
    mem.Crash(0);
  });
  auto file = std::move(*cps.Open("f", true));  // op 0
  ASSERT_TRUE(file->Write(0, base::AsBytes("AA", 2)).ok());  // op 1
  ASSERT_TRUE(file->Sync().ok());                            // op 2
  cps.ArmCrashAtOp(3);
  auto st = file->Write(0, base::AsBytes("BB", 2));          // op 3: boom
  EXPECT_EQ(base::StatusCode::kUnavailable, st.code());
  EXPECT_TRUE(cps.crashed());
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(3u, cps.crash_op());
  // Everything fails until reboot, reads included.
  char buf[2];
  EXPECT_FALSE(file->Read(0, buf, 2).ok());
  EXPECT_FALSE(cps.Exists("f").ok());
  cps.Disarm();
  ASSERT_TRUE(file->ReadExact(0, buf, 2).ok());
  EXPECT_EQ(0, std::memcmp(buf, "AA", 2));  // interrupted write never landed
}

TEST(CrashPointStore, TornVariantPersistsPrefixOfInterruptedWrite) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  cps.SetCrashHook([&] { mem.Crash(0); });
  auto file = std::move(*cps.Open("f", true));               // op 0
  ASSERT_TRUE(file->Write(0, base::AsBytes("AAAA", 4)).ok());  // op 1
  ASSERT_TRUE(file->Sync().ok());                              // op 2
  cps.ArmCrashAtOp(3, /*torn_bytes=*/2);
  EXPECT_FALSE(file->Write(0, base::AsBytes("BBBB", 4)).ok());  // op 3
  cps.Disarm();
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "BBAA", 4));
}

TEST(CrashPointStore, CrashAtCreateLeavesNoFile) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  cps.SetCrashHook([&] { mem.Crash(0); });
  cps.ArmCrashAtOp(0);
  EXPECT_FALSE(cps.Open("f", true).ok());
  cps.Disarm();
  EXPECT_FALSE(*cps.Exists("f"));
}

TEST(CrashPointStore, ResetOpCountStartsNewEpoch) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  auto file = std::move(*cps.Open("f", true));
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(2u, cps.op_count());
  cps.ResetOpCount();
  EXPECT_EQ(0u, cps.op_count());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(1u, cps.op_count());
}

// --- MemStore read-side injection -------------------------------------------

TEST(MemStoreInjection, FailReadsAffectsReadAndList) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("x", 1)).ok());
  store.FailReads(true);
  char c;
  EXPECT_EQ(base::StatusCode::kIoError, file->Read(0, &c, 1).status().code());
  EXPECT_EQ(base::StatusCode::kIoError, store.List().status().code());
  // Writes still land while reads fail (a half-dead medium).
  EXPECT_TRUE(file->Write(1, base::AsBytes("y", 1)).ok());
  store.FailReads(false);
  ASSERT_TRUE(file->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('x', c);
}

// --- CorruptionInjectingStore ------------------------------------------------

TEST(CorruptingStore, FlipBitMutatesStoredByte) {
  store::MemStore mem;
  store::CorruptionInjectingStore cs(&mem);
  auto file = std::move(*cs.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("\x0F", 1)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(cs.FlipBit("f", 0, 7).ok());
  char c;
  ASSERT_TRUE(file->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('\x8F', c);
  EXPECT_EQ(1u, cs.injected_corruptions());
  // The damage is already durable: it survives a simulated power loss.
  mem.Crash();
  ASSERT_TRUE(file->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('\x8F', c);
}

TEST(CorruptingStore, FlipBitOutOfRangeFails) {
  store::MemStore mem;
  store::CorruptionInjectingStore cs(&mem);
  { auto file = std::move(*cs.Open("f", true)); }
  EXPECT_FALSE(cs.FlipBit("f", 0, 0).ok());  // empty file
  EXPECT_FALSE(cs.FlipBit("missing", 0, 0).ok());
}

TEST(CorruptingStore, ZeroRangeClampsToFileSize) {
  store::MemStore mem;
  store::CorruptionInjectingStore cs(&mem);
  auto file = std::move(*cs.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("abcdef", 6)).ok());
  ASSERT_TRUE(cs.ZeroRange("f", 4, 100).ok());
  char buf[6];
  ASSERT_TRUE(file->ReadExact(0, buf, 6).ok());
  EXPECT_EQ(0, std::memcmp(buf, "abcd\0\0", 6));
  EXPECT_EQ(6u, *file->Size());  // zeroing never extends the file
}

TEST(CorruptingStore, CorruptRandomBitIsSeededDeterministic) {
  auto run = [](uint64_t seed) {
    store::MemStore mem;
    store::CorruptionInjectingStore cs(&mem, seed);
    auto file = std::move(*cs.Open("f", true));
    std::vector<uint8_t> data(128, 0xAA);
    EXPECT_TRUE(file->Write(0, base::ByteSpan(data.data(), data.size())).ok());
    return *cs.CorruptRandomBit("f");
  };
  EXPECT_EQ(run(1234), run(1234));
}

TEST(CorruptingStore, ReadGateFailsOnlyTheNamedFile) {
  store::MemStore mem;
  store::CorruptionInjectingStore cs(&mem);
  auto bad = std::move(*cs.Open("bad", true));
  auto good = std::move(*cs.Open("good", true));
  ASSERT_TRUE(bad->Write(0, base::AsBytes("x", 1)).ok());
  ASSERT_TRUE(good->Write(0, base::AsBytes("y", 1)).ok());
  cs.FailReads("bad", true);
  char c;
  EXPECT_EQ(base::StatusCode::kIoError, bad->Read(0, &c, 1).status().code());
  EXPECT_TRUE(good->ReadExact(0, &c, 1).ok());
  cs.ClearFailures();
  EXPECT_TRUE(bad->ReadExact(0, &c, 1).ok());
}

TEST(CorruptingStore, WriteAndSyncGates) {
  store::MemStore mem;
  store::CorruptionInjectingStore cs(&mem);
  auto file = std::move(*cs.Open("f", true));
  cs.FailWrites("f", true);
  EXPECT_EQ(base::StatusCode::kIoError, file->Write(0, base::AsBytes("x", 1)).code());
  EXPECT_EQ(base::StatusCode::kIoError, file->Append(base::AsBytes("x", 1)).status().code());
  EXPECT_EQ(base::StatusCode::kIoError, file->Truncate(0).code());
  cs.FailWrites("f", false);
  ASSERT_TRUE(file->Write(0, base::AsBytes("x", 1)).ok());
  cs.FailSyncs("f", true);
  EXPECT_EQ(base::StatusCode::kIoError, file->Sync().code());
  cs.FailSyncs("f", false);
  EXPECT_TRUE(file->Sync().ok());
}

TEST(CrashPointStore, OfflineFailsEverythingWithoutCrashing) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  auto file = std::move(*cps.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("x", 1)).ok());
  ASSERT_TRUE(file->Sync().ok());
  cps.SetOffline(true);
  char c;
  EXPECT_EQ(base::StatusCode::kUnavailable, file->Write(1, base::AsBytes("y", 1)).code());
  EXPECT_EQ(base::StatusCode::kUnavailable, file->Read(0, &c, 1).status().code());
  EXPECT_FALSE(cps.crashed());
  cps.SetOffline(false);
  ASSERT_TRUE(file->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('x', c);  // no state was lost by the outage itself
}

// ---------------------------------------------------------------------------
// ResourceStore: byte quota + latency injection
// ---------------------------------------------------------------------------

TEST(ResourceStore, QuotaRefusesWholeWrite) {
  store::MemStore mem;
  store::ResourceStore rs(&mem);
  auto file = std::move(*rs.Open("f", true));
  ASSERT_TRUE(rs.SetQuotaBytes(8).ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("12345678", 8)).ok());
  // One byte over: nothing of the write may land.
  auto st = file->Write(4, base::AsBytes("abcde", 5));
  EXPECT_EQ(base::StatusCode::kResourceExhausted, st.code());
  EXPECT_EQ(8u, *file->Size());
  char buf[8];
  ASSERT_TRUE(file->ReadExact(0, buf, 8).ok());
  EXPECT_EQ(0, std::memcmp(buf, "12345678", 8));
  EXPECT_EQ(1u, rs.enospc_count());
  // Overwrites within the quota still work.
  EXPECT_TRUE(file->Write(0, base::AsBytes("zzzzzzzz", 8)).ok());
}

TEST(ResourceStore, AppendShortWritesTheFittingPrefix) {
  store::MemStore mem;
  store::ResourceStore rs(&mem);
  ASSERT_TRUE(rs.SetQuotaBytes(10).ok());
  auto file = std::move(*rs.Open("f", true));
  ASSERT_TRUE(file->Append(base::AsBytes("1234567", 7)).ok());
  // 3 bytes of space left: the torn prefix lands, then ENOSPC.
  auto r = file->Append(base::AsBytes("abcdef", 6));
  EXPECT_EQ(base::StatusCode::kResourceExhausted, r.status().code());
  EXPECT_EQ(10u, *file->Size());
  char buf[10];
  ASSERT_TRUE(file->ReadExact(0, buf, 10).ok());
  EXPECT_EQ(0, std::memcmp(buf, "1234567abc", 10));
  EXPECT_EQ(10u, rs.used_bytes());
}

TEST(ResourceStore, FreesReturnCapacity) {
  store::MemStore mem;
  store::ResourceStore rs(&mem);
  ASSERT_TRUE(rs.SetQuotaBytes(8).ok());
  auto f1 = std::move(*rs.Open("a", true));
  ASSERT_TRUE(f1->Write(0, base::AsBytes("12345678", 8)).ok());
  auto f2 = std::move(*rs.Open("b", true));
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            f2->Write(0, base::AsBytes("x", 1)).code());
  // Truncate-down returns capacity...
  ASSERT_TRUE(f1->Truncate(4).ok());
  EXPECT_EQ(4u, rs.used_bytes());
  EXPECT_TRUE(f2->Write(0, base::AsBytes("abcd", 4)).ok());
  // ...and Remove returns the rest.
  f1.reset();
  ASSERT_TRUE(rs.Remove("a").ok());
  EXPECT_EQ(4u, rs.used_bytes());
  EXPECT_TRUE(f2->Write(4, base::AsBytes("efgh", 4)).ok());
}

TEST(ResourceStore, SetQuotaScansExistingUsage) {
  store::MemStore mem;
  {
    auto file = std::move(*mem.Open("pre", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("123456", 6)).ok());
  }
  store::ResourceStore rs(&mem);
  ASSERT_TRUE(rs.SetQuotaBytes(8).ok());
  EXPECT_EQ(6u, rs.used_bytes());
  auto file = std::move(*rs.Open("pre", true));
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            file->Write(0, base::AsBytes("123456789", 9)).code());
}

TEST(ResourceStore, LatencyInjectionDelaysMatchingFiles) {
  store::MemStore mem;
  store::ResourceStore rs(&mem, /*seed=*/7);
  rs.InjectLatency("slow", /*mean_nanos=*/2'000'000, /*jitter_nanos=*/1'000'000);
  auto slow = std::move(*rs.Open("slow.log", true));
  auto fast = std::move(*rs.Open("fast.log", true));
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(slow->Write(0, base::AsBytes("x", 1)).ok());
  auto slow_nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(slow_nanos, 1'000'000);  // at least mean - jitter
  ASSERT_TRUE(fast->Write(0, base::AsBytes("x", 1)).ok());
  rs.ClearLatency();
  t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(slow->Write(0, base::AsBytes("y", 1)).ok());
  // No assertion on the fast path's absolute time (CI noise); only that the
  // rule is really gone from the store's rule list.
  ASSERT_TRUE(slow->Sync().ok());
}

TEST(ResourceStore, ComposesUnderCrashPoint) {
  // CrashPoint over Resource over Mem: a crash mid-run must not corrupt the
  // quota ledger for post-recovery use.
  store::MemStore mem;
  store::ResourceStore rs(&mem);
  ASSERT_TRUE(rs.SetQuotaBytes(6).ok());
  store::CrashPointStore cps(&rs);
  auto file = std::move(*cps.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("123", 3)).ok());
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            file->Write(0, base::AsBytes("1234567", 7)).code());
  EXPECT_EQ(3u, rs.used_bytes());
}

// ---------------------------------------------------------------------------
// Native quotas in MemStore / FileStore
// ---------------------------------------------------------------------------

TEST(MemStoreQuota, WholeFailAndShortAppend) {
  store::MemStore mem;
  auto file = std::move(*mem.Open("f", true));
  mem.SetQuotaBytes(6);
  ASSERT_TRUE(file->Write(0, base::AsBytes("1234", 4)).ok());
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            file->Write(4, base::AsBytes("abc", 3)).code());
  EXPECT_EQ(4u, *file->Size());  // whole-fail: nothing landed
  auto r = file->Append(base::AsBytes("xyz", 3));
  EXPECT_EQ(base::StatusCode::kResourceExhausted, r.status().code());
  EXPECT_EQ(6u, *file->Size());  // short append: the fitting prefix landed
  char buf[6];
  ASSERT_TRUE(file->ReadExact(0, buf, 6).ok());
  EXPECT_EQ(0, std::memcmp(buf, "1234xy", 6));
  EXPECT_EQ(2u, mem.enospc_count());
  EXPECT_EQ(6u, mem.used_bytes());
  // Truncate growth is also gated; shrink frees.
  EXPECT_EQ(base::StatusCode::kResourceExhausted, file->Truncate(8).code());
  ASSERT_TRUE(file->Truncate(2).ok());
  EXPECT_EQ(2u, mem.used_bytes());
}

TEST(FileStoreQuota, WholeFailShortAppendAndFrees) {
  auto dir = std::filesystem::temp_directory_path() /
             ("lbc_filequota_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  store::FileStoreOptions opts;
  opts.quota_bytes = 6;
  auto store = std::move(*store::OpenFileStore(dir.string(), opts));
  auto file = std::move(*store->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("1234", 4)).ok());
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            file->Write(2, base::AsBytes("abcde", 5)).code());
  EXPECT_EQ(4u, *file->Size());
  auto r = file->Append(base::AsBytes("xyz", 3));
  EXPECT_EQ(base::StatusCode::kResourceExhausted, r.status().code());
  EXPECT_EQ(6u, *file->Size());
  // Remove frees capacity for a new file.
  file.reset();
  ASSERT_TRUE(store->Remove("f").ok());
  auto f2 = std::move(*store->Open("g", true));
  EXPECT_TRUE(f2->Write(0, base::AsBytes("123456", 6)).ok());
  f2.reset();
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(FileStoreQuota, OpenScansExistingBytes) {
  auto dir = std::filesystem::temp_directory_path() /
             ("lbc_filequota_scan_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto store = std::move(*store::OpenFileStore(dir.string()));
    auto file = std::move(*store->Open("pre", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("12345", 5)).ok());
  }
  store::FileStoreOptions opts;
  opts.quota_bytes = 6;
  auto store = std::move(*store::OpenFileStore(dir.string(), opts));
  auto file = std::move(*store->Open("pre", true));
  EXPECT_EQ(base::StatusCode::kResourceExhausted,
            file->Write(0, base::AsBytes("1234567", 7)).code());
  EXPECT_TRUE(file->Write(5, base::AsBytes("x", 1)).ok());
  file.reset();
  store.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
