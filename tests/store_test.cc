// DurableStore conformance tests run against both implementations, plus
// MemStore-specific crash and failure-injection behaviour.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>

#include "src/store/durable_store.h"
#include "src/store/mem_store.h"

namespace {

enum class StoreKind { kMem, kFile };

class StoreConformanceTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kMem) {
      store_ = std::make_unique<store::MemStore>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("lbc_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      store_ = std::move(*store::OpenFileStore(dir_.string()));
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) {
      std::filesystem::remove_all(dir_);
    }
  }

  std::unique_ptr<store::DurableStore> store_;
  std::filesystem::path dir_;
};

TEST_P(StoreConformanceTest, OpenMissingWithoutCreateFails) {
  auto r = store_->Open("nope", /*create=*/false);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(base::StatusCode::kNotFound, r.status().code());
}

TEST_P(StoreConformanceTest, WriteReadRoundTrip) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("hello", 5)).ok());
  char buf[5];
  ASSERT_TRUE(file->ReadExact(0, buf, 5).ok());
  EXPECT_EQ(0, std::memcmp(buf, "hello", 5));
}

TEST_P(StoreConformanceTest, WriteExtendsFile) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(100, base::AsBytes("x", 1)).ok());
  EXPECT_EQ(101u, *file->Size());
  // The gap reads as zeros.
  char buf[3];
  ASSERT_TRUE(file->ReadExact(50, buf, 3).ok());
  EXPECT_EQ(0, buf[0]);
}

TEST_P(StoreConformanceTest, ReadPastEndIsShort) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("abc", 3)).ok());
  char buf[10];
  EXPECT_EQ(3u, *file->Read(0, buf, 10));
  EXPECT_EQ(0u, *file->Read(3, buf, 10));
  EXPECT_EQ(base::StatusCode::kDataLoss, file->ReadExact(0, buf, 10).code());
}

TEST_P(StoreConformanceTest, AppendReturnsOffset) {
  auto file = std::move(*store_->Open("f", true));
  EXPECT_EQ(0u, *file->Append(base::AsBytes("aaa", 3)));
  EXPECT_EQ(3u, *file->Append(base::AsBytes("bb", 2)));
  EXPECT_EQ(5u, *file->Size());
}

TEST_P(StoreConformanceTest, TruncateShrinks) {
  auto file = std::move(*store_->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("abcdef", 6)).ok());
  ASSERT_TRUE(file->Truncate(2).ok());
  EXPECT_EQ(2u, *file->Size());
}

TEST_P(StoreConformanceTest, ExistsRemoveList) {
  EXPECT_FALSE(*store_->Exists("f"));
  { auto file = std::move(*store_->Open("f", true)); }
  EXPECT_TRUE(*store_->Exists("f"));
  auto names = *store_->List();
  EXPECT_EQ(1u, names.size());
  ASSERT_TRUE(store_->Remove("f").ok());
  EXPECT_FALSE(*store_->Exists("f"));
  // Removing a missing file is not an error (idempotent cleanup).
  EXPECT_TRUE(store_->Remove("f").ok());
}

TEST_P(StoreConformanceTest, RenameMovesContent) {
  {
    auto file = std::move(*store_->Open("a", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(store_->Rename("a", "b").ok());
  EXPECT_FALSE(*store_->Exists("a"));
  auto file = std::move(*store_->Open("b", false));
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "data", 4));
}

INSTANTIATE_TEST_SUITE_P(Impls, StoreConformanceTest,
                         ::testing::Values(StoreKind::kMem, StoreKind::kFile),
                         [](const auto& info) {
                           return info.param == StoreKind::kMem ? "Mem" : "File";
                         });

// --- MemStore crash semantics ----------------------------------------------

TEST(MemStoreCrash, UnsyncedWritesVanish) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("SAFE", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("GONE", 4)).ok());
  store.Crash();
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "SAFE", 4));
}

TEST(MemStoreCrash, TornWriteLeavesPrefix) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("AAAA", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("BBBB", 4)).ok());
  store.Crash(/*torn_bytes=*/2);
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "BBAA", 4));
}

TEST(MemStoreCrash, TornBudgetSpansWritesInOrder) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Write(0, base::AsBytes("11", 2)).ok());
  ASSERT_TRUE(file->Write(2, base::AsBytes("22", 2)).ok());
  ASSERT_TRUE(file->Write(4, base::AsBytes("33", 2)).ok());
  store.Crash(/*torn_bytes=*/3);
  char buf[6] = {0};
  size_t n = *file->Read(0, buf, 6);
  // First write fully survives, second tears after one byte, third is gone.
  ASSERT_GE(n, 3u);
  EXPECT_EQ(0, std::memcmp(buf, "112", 3));
  EXPECT_EQ(3u, n);
}

TEST(MemStoreInjection, FailWritesAfterBudget) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  store.FailWritesAfterBytes(5);
  ASSERT_TRUE(file->Write(0, base::AsBytes("1234", 4)).ok());
  EXPECT_EQ(base::StatusCode::kIoError, file->Write(4, base::AsBytes("5678", 4)).code());
  store.FailWritesAfterBytes(-1);
  EXPECT_TRUE(file->Write(4, base::AsBytes("5678", 4)).ok());
}

TEST(MemStoreStats, CountsBytesAndSyncs) {
  store::MemStore store;
  auto file = std::move(*store.Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("12345", 5)).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(5u, store.total_bytes_written());
  EXPECT_EQ(1u, store.sync_count());
}

TEST(MemStore, HandlesSurviveCrash) {
  store::MemStore store;
  auto a = std::move(*store.Open("f", true));
  auto b = std::move(*store.Open("f", true));
  ASSERT_TRUE(a->Write(0, base::AsBytes("x", 1)).ok());
  ASSERT_TRUE(a->Sync().ok());
  store.Crash();
  char c;
  ASSERT_TRUE(b->ReadExact(0, &c, 1).ok());
  EXPECT_EQ('x', c);
}

}  // namespace
