// Deeper token-lock protocol coverage (§3.3): request chains through the
// distributed waiter queue, forwards racing token arrival, remote managers,
// disconnect behavior, and many-lock / many-node configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/lbc/client.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

struct Fixture {
  explicit Fixture(int n_clients, rvm::NodeId manager = 1) {
    cluster = std::make_unique<lbc::Cluster>(&store);
    cluster->DefineLock(kLock, kRegion, manager);
    for (int i = 0; i < n_clients; ++i) {
      clients.push_back(std::move(*lbc::Client::Create(cluster.get(), 1 + i, {})));
      EXPECT_TRUE(clients.back()->MapRegion(kRegion, 8192).ok());
    }
  }
  lbc::Client* operator[](int i) { return clients[i].get(); }

  store::MemStore store;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<std::unique_ptr<lbc::Client>> clients;
};

void Bump(lbc::Client* c) {
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  uint64_t v;
  std::memcpy(&v, c->GetRegion(kRegion)->data(), 8);
  ++v;
  ASSERT_TRUE(txn.SetRange(kRegion, 0, 8).ok());
  std::memcpy(c->GetRegion(kRegion)->data(), &v, 8);
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(LockProtocol, WaiterChainServesInRequestOrder) {
  // Three nodes queue behind the holder; the distributed waiter queue must
  // hand the token along the chain, each acquire seeing the previous value.
  Fixture fx(4);
  // Node 1 (manager) holds the lock in an open transaction while the others
  // request; then releases.
  std::atomic<uint64_t> order{0};
  lbc::Transaction holder = fx[0]->Begin();
  ASSERT_TRUE(holder.Acquire(kLock).ok());

  std::vector<std::thread> waiters;
  std::atomic<int> started{0};
  for (int i = 1; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      ++started;
      Bump(fx[i]);
      order.fetch_add(1);
    });
    // Stagger the requests so the manager queue order is deterministic.
    while (started < i) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(0u, order.load());  // all blocked behind the holder
  ASSERT_TRUE(holder.SetRange(kRegion, 0, 8).ok());
  uint64_t one = 1;
  std::memcpy(fx[0]->GetRegion(kRegion)->data(), &one, 8);
  ASSERT_TRUE(holder.Commit().ok());
  for (auto& t : waiters) {
    t.join();
  }
  // 1 (holder) + 3 bumps, visible everywhere.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx[i]->WaitForAppliedSeq(kLock, 4, 5000));
    uint64_t v;
    std::memcpy(&v, fx[i]->GetRegion(kRegion)->data(), 8);
    EXPECT_EQ(4u, v) << "client " << i;
  }
}

TEST(LockProtocol, ManagerNeedNotParticipate) {
  // The manager (node 1) never acquires; nodes 2 and 3 ping-pong through it.
  Fixture fx(3, /*manager=*/1);
  for (int round = 0; round < 6; ++round) {
    Bump(fx[1 + round % 2]);
  }
  ASSERT_TRUE(fx[0]->WaitForAppliedSeq(kLock, 6, 5000));
  uint64_t v;
  std::memcpy(&v, fx[0]->GetRegion(kRegion)->data(), 8);
  EXPECT_EQ(6u, v);
}

TEST(LockProtocol, RemoteManagerFirstAcquire) {
  // Manager is node 3; node 1's very first acquire must fetch the token
  // from an agent that has never been touched before.
  Fixture fx(3, /*manager=*/3);
  Bump(fx[0]);
  ASSERT_TRUE(fx[2]->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_GE(fx[0]->stats().lock_messages_sent, 1u);
}

TEST(LockProtocol, TokenStaysLocalUntilRequested) {
  Fixture fx(2);
  Bump(fx[0]);
  Bump(fx[0]);
  Bump(fx[0]);
  uint64_t msgs = fx[0]->stats().lock_messages_sent;
  EXPECT_EQ(0u, msgs);  // manager-owned token, never requested elsewhere
  Bump(fx[1]);
  EXPECT_GE(fx[1]->stats().lock_messages_sent, 1u);
}

TEST(LockProtocol, ManyLocksIndependentTokens) {
  Fixture fx(2);
  for (rvm::LockId lock = 100; lock < 110; ++lock) {
    fx.cluster->DefineLock(lock, kRegion, 1 + lock % 2);
  }
  // Acquire all ten locks in one transaction on each client alternately.
  for (int round = 0; round < 2; ++round) {
    lbc::Client* c = fx[round % 2];
    lbc::Transaction txn = c->Begin();
    for (rvm::LockId lock = 100; lock < 110; ++lock) {
      ASSERT_TRUE(txn.Acquire(lock).ok()) << "lock " << lock;
    }
    ASSERT_TRUE(txn.SetRange(kRegion, round * 8, 8).ok());
    std::memset(c->GetRegion(kRegion)->data() + round * 8, round + 1, 8);
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (rvm::LockId lock = 100; lock < 110; ++lock) {
    ASSERT_TRUE(fx[0]->WaitForAppliedSeq(lock, 2, 5000)) << lock;
  }
  EXPECT_EQ(1, fx[0]->GetRegion(kRegion)->data()[0]);
  EXPECT_EQ(2, fx[0]->GetRegion(kRegion)->data()[8]);
}

TEST(LockProtocol, DisconnectedClientFailsAcquire) {
  Fixture fx(2);
  Bump(fx[0]);  // token at manager (node 1)
  fx[1]->Disconnect();
  lbc::Transaction txn = fx[1]->Begin();
  base::Status st = txn.Acquire(kLock);
  EXPECT_FALSE(st.ok());
  ASSERT_TRUE(txn.Abort().ok());
}

TEST(LockProtocol, HeldForwardDeliveredOnRelease) {
  // A forward that arrives while the holder's transaction is open must be
  // remembered and served at commit.
  Fixture fx(2);
  lbc::Transaction holder = fx[0]->Begin();
  ASSERT_TRUE(holder.Acquire(kLock).ok());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    Bump(fx[1]);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(holder.Commit().ok());  // read-only: seq handed back
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(LockProtocol, StressManyShortTransactions) {
  Fixture fx(3);
  constexpr int kRounds = 60;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < kRounds; ++k) {
        Bump(fx[i]);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t total = 3 * kRounds;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx[i]->WaitForAppliedSeq(kLock, total, 20000));
    uint64_t v;
    std::memcpy(&v, fx[i]->GetRegion(kRegion)->data(), 8);
    EXPECT_EQ(total, v);
  }
}

}  // namespace
