// RangeSet: the §3.1 modified-range tree, both coalescing modes.
#include "src/rvm/range_set.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/base/rng.h"

namespace {

using rvm::AddOutcome;
using rvm::CoalesceMode;
using rvm::RangeSet;

TEST(RangeSetFull, MergesAdjacent) {
  RangeSet s(CoalesceMode::kFullCoalesce);
  EXPECT_EQ(AddOutcome::kInserted, s.Add(0, 10));
  EXPECT_EQ(AddOutcome::kCoalesced, s.Add(10, 10));
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(20u, s.byte_count());
}

TEST(RangeSetFull, MergesOverlapping) {
  RangeSet s(CoalesceMode::kFullCoalesce);
  s.Add(0, 10);
  s.Add(5, 10);
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(15u, s.byte_count());
}

TEST(RangeSetFull, MergesSpanningMultiple) {
  RangeSet s(CoalesceMode::kFullCoalesce);
  s.Add(0, 5);
  s.Add(10, 5);
  s.Add(20, 5);
  EXPECT_EQ(3u, s.range_count());
  // One range covering everything swallows all three.
  EXPECT_EQ(AddOutcome::kCoalesced, s.Add(0, 25));
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(25u, s.byte_count());
}

TEST(RangeSetFull, ExactDuplicateDetected) {
  RangeSet s(CoalesceMode::kFullCoalesce);
  s.Add(100, 8);
  EXPECT_EQ(AddOutcome::kExactDuplicate, s.Add(100, 8));
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(8u, s.byte_count());
}

TEST(RangeSetFull, DisjointStayDisjoint) {
  RangeSet s(CoalesceMode::kFullCoalesce);
  s.Add(0, 4);
  s.Add(100, 4);
  s.Add(50, 4);
  EXPECT_EQ(3u, s.range_count());
  EXPECT_EQ(12u, s.byte_count());
}

TEST(RangeSetExact, DuplicatesCoalesceOnly) {
  RangeSet s(CoalesceMode::kExactMatch);
  EXPECT_EQ(AddOutcome::kInserted, s.Add(100, 8));
  EXPECT_EQ(AddOutcome::kExactDuplicate, s.Add(100, 8));
  EXPECT_EQ(AddOutcome::kExactDuplicate, s.Add(100, 8));
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(8u, s.byte_count());
}

TEST(RangeSetExact, AdjacentNotMerged) {
  // Unlike classic RVM, the optimized mode keeps adjacent ranges separate.
  RangeSet s(CoalesceMode::kExactMatch);
  s.Add(0, 8);
  s.Add(8, 8);
  EXPECT_EQ(2u, s.range_count());
  EXPECT_EQ(16u, s.byte_count());
}

TEST(RangeSetExact, OrderedInsertUsesHint) {
  RangeSet s(CoalesceMode::kExactMatch);
  for (uint64_t i = 0; i < 100; ++i) {
    s.Add(i * 16, 8);
  }
  EXPECT_EQ(100u, s.range_count());
  // All but the first insertion should ride the ordered-address fast path.
  EXPECT_GE(s.hint_hits(), 98u);
}

TEST(RangeSetExact, RepeatedSameRangeUsesHint) {
  RangeSet s(CoalesceMode::kExactMatch);
  s.Add(64, 8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(AddOutcome::kExactDuplicate, s.Add(64, 8));
  }
  EXPECT_GE(s.hint_hits(), 50u);
}

TEST(RangeSetExact, SameStartLongerLengthGrows) {
  RangeSet s(CoalesceMode::kExactMatch);
  s.Add(0, 8);
  s.Add(0, 16);
  EXPECT_EQ(1u, s.range_count());
  EXPECT_EQ(16u, s.byte_count());
}

TEST(RangeSet, ClearResets) {
  RangeSet s(CoalesceMode::kExactMatch);
  s.Add(0, 8);
  s.Clear();
  EXPECT_EQ(0u, s.range_count());
  EXPECT_EQ(0u, s.byte_count());
  EXPECT_EQ(AddOutcome::kInserted, s.Add(0, 8));
}

TEST(RangeSet, IterationIsAddressOrdered) {
  RangeSet s(CoalesceMode::kExactMatch);
  s.Add(300, 4);
  s.Add(100, 4);
  s.Add(200, 4);
  uint64_t prev = 0;
  for (const auto& [off, len] : s.ranges()) {
    EXPECT_GT(off, prev);
    prev = off;
  }
}

// Property: in full-coalesce mode the set is always a minimal disjoint
// cover of the bytes added; byte_count equals the union size.
class RangeSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeSetPropertyTest, FullCoalesceIsMinimalCover) {
  base::Rng rng(GetParam());
  RangeSet s(CoalesceMode::kFullCoalesce);
  std::map<uint64_t, bool> bytes;  // reference model
  for (int i = 0; i < 300; ++i) {
    uint64_t off = rng.Uniform(2048);
    uint64_t len = 1 + rng.Uniform(64);
    s.Add(off, len);
    for (uint64_t b = off; b < off + len; ++b) {
      bytes[b] = true;
    }
  }
  // Union size matches.
  EXPECT_EQ(bytes.size(), s.byte_count());
  // Ranges are disjoint, non-adjacent, and cover exactly the model bytes.
  uint64_t covered = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [off, len] : s.ranges()) {
    if (!first) {
      EXPECT_GT(off, prev_end) << "ranges adjacent or overlapping";
    }
    for (uint64_t b = off; b < off + len; ++b) {
      EXPECT_TRUE(bytes.count(b)) << "range covers byte never added";
    }
    covered += len;
    prev_end = off + len;
    first = false;
  }
  EXPECT_EQ(bytes.size(), covered);
}

TEST_P(RangeSetPropertyTest, ExactModeNeverLosesBytes) {
  base::Rng rng(GetParam());
  RangeSet s(CoalesceMode::kExactMatch);
  std::map<uint64_t, bool> bytes;
  for (int i = 0; i < 300; ++i) {
    uint64_t off = rng.Uniform(4096) & ~7ull;  // object-aligned, like compiler output
    uint64_t len = 8 << rng.Uniform(3);
    s.Add(off, len);
    for (uint64_t b = off; b < off + len; ++b) {
      bytes[b] = true;
    }
  }
  // Every added byte is inside some registered range (no loss; duplication
  // across genuinely overlapping ranges is allowed in this mode).
  std::map<uint64_t, bool> covered;
  for (const auto& [off, len] : s.ranges()) {
    for (uint64_t b = off; b < off + len; ++b) {
      covered[b] = true;
    }
  }
  for (const auto& [b, unused] : bytes) {
    EXPECT_TRUE(covered.count(b)) << "byte " << b << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetPropertyTest, ::testing::Range<uint64_t>(0, 10));

}  // namespace
