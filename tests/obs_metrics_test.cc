// Observability layer: instruments, registry semantics, the trace ring's
// bounded-overwrite behavior, the exporters, and the integer-nanosecond
// ScopedTimer that replaced the double-truncating per-module stopwatch
// pattern (stats_.x_nanos += uint64_t(timer.ElapsedSeconds() * 1e9)).
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "src/base/clock.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace {

TEST(Counter, AddIncrementReset) {
  obs::Counter c;
  EXPECT_EQ(0u, c.value());
  c.Increment();
  c.Add(41);
  EXPECT_EQ(42u, c.value());
  c.Reset();
  EXPECT_EQ(0u, c.value());
}

TEST(Gauge, SetAddGoesDown) {
  obs::Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(-15, g.value());
  g.Reset();
  EXPECT_EQ(0, g.value());
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(0, obs::Histogram::BucketOf(0));
  EXPECT_EQ(1, obs::Histogram::BucketOf(1));
  EXPECT_EQ(2, obs::Histogram::BucketOf(2));
  EXPECT_EQ(2, obs::Histogram::BucketOf(3));
  EXPECT_EQ(3, obs::Histogram::BucketOf(4));
  for (int b = 1; b < obs::Histogram::kBuckets; ++b) {
    uint64_t lo = obs::Histogram::BucketLowerBound(b);
    EXPECT_EQ(b, obs::Histogram::BucketOf(lo)) << "lower bound of bucket " << b;
    if (b < 64) {
      // Last value of the bucket is 2^b - 1.
      EXPECT_EQ(b, obs::Histogram::BucketOf((uint64_t{1} << b) - 1));
      EXPECT_EQ(b + 1, obs::Histogram::BucketOf(uint64_t{1} << b));
    }
  }
  EXPECT_EQ(64, obs::Histogram::BucketOf(UINT64_MAX));
}

TEST(Histogram, RecordTracksExactCountSumMinMax) {
  obs::Histogram h;
  EXPECT_EQ(0u, h.min());
  EXPECT_EQ(0u, h.max());
  EXPECT_EQ(0u, h.PercentileUpperBound(99));
  for (uint64_t v : {7u, 100u, 3u, 100000u}) {
    h.Record(v);
  }
  EXPECT_EQ(4u, h.count());
  EXPECT_EQ(100110u, h.sum());
  EXPECT_EQ(3u, h.min());
  EXPECT_EQ(100000u, h.max());
  EXPECT_DOUBLE_EQ(100110.0 / 4.0, h.mean());
  // With 4 samples, p99's rank truncates to 3: the third value ascending is
  // 100, whose bucket [64, 128) is reported as <= 127. p100 is the top
  // sample's bucket [65536, 131072).
  EXPECT_EQ(127u, h.PercentileUpperBound(99));
  EXPECT_EQ((uint64_t{1} << 17) - 1, h.PercentileUpperBound(100));
  h.Reset();
  EXPECT_EQ(0u, h.count());
  EXPECT_EQ(0u, h.min());
}

TEST(Registry, FindOrCreateSharesInstruments) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("lbc.n1.commits");
  obs::Counter* b = reg.GetCounter("lbc.n1.commits");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("lbc.n2.commits"));
  a->Add(5);
  EXPECT_EQ(5u, b->value());
}

TEST(Registry, SnapshotAndResetAll) {
  obs::MetricsRegistry reg;
  reg.GetCounter("x.count")->Add(3);
  reg.GetGauge("x.level")->Set(-2);
  reg.GetHistogram("x.nanos")->Record(1000);
  auto snap = reg.TakeSnapshot();
  EXPECT_EQ(3u, snap.counters.at("x.count"));
  EXPECT_EQ(-2, snap.gauges.at("x.level"));
  EXPECT_EQ(1u, snap.histograms.at("x.nanos").count);
  EXPECT_EQ(1000u, snap.histograms.at("x.nanos").min);
  ASSERT_EQ(1u, snap.histograms.at("x.nanos").buckets.size());
  EXPECT_EQ(512u, snap.histograms.at("x.nanos").buckets[0].first);  // [512,1024)
  reg.ResetAll();
  auto zeroed = reg.TakeSnapshot();
  EXPECT_EQ(0u, zeroed.counters.at("x.count"));
  EXPECT_EQ(0u, zeroed.histograms.at("x.nanos").count);
}

TEST(Registry, NodeMetricNameScheme) {
  EXPECT_EQ("rvm.n3.detect_nanos", obs::NodeMetricName("rvm", 3, "detect_nanos"));
}

TEST(Registry, CountersAreThreadSafe) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::Counter* c = reg.GetCounter("contended");
      for (int i = 0; i < kAdds; ++i) {
        c->Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kAdds, reg.GetCounter("contended")->value());
}

// The satellite regression for the old accumulation pattern: each sample was
// round-tripped through double seconds and truncated back to integer nanos,
// so N accumulated short samples drifted below one long sample. ScopedTimer
// must make them exactly equal under a deterministic clock.
TEST(ScopedTimer, ShortSamplesAccumulateExactly) {
  base::ManualClock clock;
  obs::Counter many;
  obs::Counter one;
  obs::Histogram histo;
  // Deliberately awkward: not a power of two, not a multiple of 10.
  constexpr uint64_t kSampleNanos = 1467;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    obs::ScopedTimer timer(&many, &histo, &clock);
    clock.AdvanceNanos(kSampleNanos);
  }
  {
    obs::ScopedTimer timer(&one, nullptr, &clock);
    clock.AdvanceNanos(kSampleNanos * kSamples);
  }
  EXPECT_EQ(kSampleNanos * kSamples, many.value());
  EXPECT_EQ(one.value(), many.value());
  EXPECT_EQ(static_cast<uint64_t>(kSamples), histo.count());
  EXPECT_EQ(many.value(), histo.sum());
  EXPECT_EQ(kSampleNanos, histo.min());
  EXPECT_EQ(kSampleNanos, histo.max());
}

TEST(ScopedTimer, StopIsIdempotentAndReturnsElapsed) {
  base::ManualClock clock(1000);
  obs::Counter c;
  obs::ScopedTimer timer(&c, nullptr, &clock);
  clock.AdvanceNanos(250);
  EXPECT_EQ(250u, timer.StopNanos());
  clock.AdvanceNanos(9999);
  EXPECT_EQ(250u, timer.StopNanos());  // same reading, no re-publish
  EXPECT_EQ(250u, c.value());
}

TEST(ScopedTimer, DestructorPublishesWhenNotStopped) {
  base::ManualClock clock;
  obs::Counter c;
  {
    obs::ScopedTimer timer(&c, nullptr, &clock);
    clock.AdvanceNanos(77);
  }
  EXPECT_EQ(77u, c.value());
}

TEST(TraceRing, KeepsNewestEventsOldestFirst) {
  obs::TraceRing ring(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    ring.Emit(/*node=*/1, obs::TraceType::kTokenPass, /*lock=*/10, /*seq=*/i, /*bytes=*/0);
  }
  EXPECT_EQ(6u, ring.total_emitted());
  EXPECT_EQ(2u, ring.dropped());
  auto events = ring.Snapshot();
  ASSERT_EQ(4u, events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(i + 3, events[i].seq);  // events 3..6 survive, oldest first
    EXPECT_EQ(obs::TraceType::kTokenPass, events[i].type);
    EXPECT_EQ(10u, events[i].lock);
  }
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(0u, ring.total_emitted());
}

TEST(TraceRing, TypeNamesAreStable) {
  EXPECT_STREQ("commit_broadcast", obs::TraceTypeName(obs::TraceType::kCommitBroadcast));
  EXPECT_STREQ("interlock_stall", obs::TraceTypeName(obs::TraceType::kInterlockStall));
  EXPECT_STREQ("retransmit", obs::TraceTypeName(obs::TraceType::kRetransmit));
  EXPECT_STREQ("client_recovered", obs::TraceTypeName(obs::TraceType::kClientRecovered));
}

TEST(Export, TextDumpListsInstrumentsAndTrace) {
  obs::MetricsRegistry reg;
  reg.GetCounter("netsim.fabric.dropped")->Add(12);
  reg.GetHistogram("lbc.n1.commit_nanos")->Record(4096);
  obs::TraceRing ring(8);
  ring.Emit(2, obs::TraceType::kReclaimRound, /*lock=*/21, /*seq=*/5, /*bytes=*/0);
  std::string text = obs::DumpText(reg, &ring);
  EXPECT_NE(std::string::npos, text.find("netsim.fabric.dropped 12"));
  EXPECT_NE(std::string::npos, text.find("lbc.n1.commit_nanos count=1"));
  EXPECT_NE(std::string::npos, text.find("reclaim_round"));
  EXPECT_NE(std::string::npos, text.find("trace emitted=1"));
}

TEST(Export, JsonDumpHasAllSections) {
  obs::MetricsRegistry reg;
  reg.GetCounter("a.count")->Add(7);
  reg.GetGauge("a.level")->Set(3);
  reg.GetHistogram("a.nanos")->Record(100);
  obs::TraceRing ring(8);
  ring.Emit(1, obs::TraceType::kCommitBroadcast, 2, 3, 4);
  std::string json = obs::DumpJson(reg, &ring);
  // The counters section also carries the injected sync.lockorder.* gauges,
  // so match the entry rather than the whole section.
  EXPECT_NE(std::string::npos, json.find("\"a.count\":7"));
  EXPECT_NE(std::string::npos, json.find("\"sync.lockorder.acquires_checked\":"));
  EXPECT_NE(std::string::npos, json.find("\"gauges\":{\"a.level\":3}"));
  EXPECT_NE(std::string::npos, json.find("\"count\":1"));
  EXPECT_NE(std::string::npos, json.find("\"buckets\":[[64,1]]"));  // 100 in [64,128)
  EXPECT_NE(std::string::npos,
            json.find("{\"nanos\":"));  // at least one trace event object
  EXPECT_NE(std::string::npos, json.find("\"type\":\"commit_broadcast\""));
  // Balanced braces: cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Export, WriteJsonSnapshotCreatesFile) {
  std::string path = ::testing::TempDir() + "/obs_snapshot_test.json";
  obs::MetricsRegistry::Global()->GetCounter("test.snapshot_marker")->Increment();
  ASSERT_TRUE(obs::WriteJsonSnapshot(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string body((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(std::string::npos, body.find("\"test.snapshot_marker\":"));
  std::remove(path.c_str());
}

TEST(Export, SnapshotPathHonorsEnvOverride) {
  EXPECT_EQ("BENCH_obs.json", obs::SnapshotPath());
  ::setenv("LBC_OBS_OUT", "/tmp/custom_obs.json", 1);
  EXPECT_EQ("/tmp/custom_obs.json", obs::SnapshotPath());
  ::unsetenv("LBC_OBS_OUT");
  EXPECT_EQ("BENCH_obs.json", obs::SnapshotPath());
}

}  // namespace
