// Chaos tests: the full stack under an adversarial fabric.
//
//   1. Fault injection is deterministic: the same seed yields the same
//      per-link drop/duplicate decisions (and so the same survivor stream).
//   2. ReliableChannel restores exactly-once FIFO delivery over a link that
//      drops, duplicates, and reorders.
//   3. End to end: a seeded random workload over a lossy, partitioned
//      fabric — one client killed mid-commit, then the storage server
//      itself killed and restarted mid-run (store offline, directories
//      wiped, rebuilt from the merged client logs) — still converges:
//      every surviving client's cached image is byte-identical, equals the
//      crash-recovered database files, and the whole scenario is
//      deterministic across two runs with the same seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/base/rng.h"
#include "src/base/sync.h"
#include "src/lbc/client.h"
#include "src/netsim/fabric.h"
#include "src/netsim/reliable.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/rvm/log_merge.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/recovery.h"
#include "src/rvm/scrub.h"
#include "src/store/crash_point_store.h"
#include "src/store/mem_store.h"
#include "src/store/resource_store.h"

namespace {

// Dump the accumulated metrics + protocol trace once the whole suite is done,
// so a chaos run doubles as an observability smoke test.
class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};

const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

// ---------------------------------------------------------------------------
// 1. Deterministic fault injection
// ---------------------------------------------------------------------------

struct LossyRunResult {
  std::vector<uint32_t> delivered;  // message ids in arrival order
  netsim::FaultStats stats;
};

LossyRunResult RunLossyStream(uint64_t seed) {
  netsim::Fabric fabric;
  fabric.SeedFaults(seed);
  netsim::LinkFaults faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.2;
  netsim::Endpoint* a = fabric.AddNode(1);
  netsim::Endpoint* b = fabric.AddNode(2);
  fabric.SetLinkFaults(1, 2, faults);

  constexpr uint32_t kMessages = 400;
  for (uint32_t i = 0; i < kMessages; ++i) {
    std::vector<uint8_t> payload(4);
    std::memcpy(payload.data(), &i, 4);
    EXPECT_TRUE(a->Send(2, std::move(payload)).ok());
  }
  LossyRunResult out;
  out.stats = fabric.fault_stats();
  // No delay faults: every survivor is already queued synchronously.
  uint64_t expect = kMessages - out.stats.dropped + out.stats.duplicated;
  for (uint64_t i = 0; i < expect; ++i) {
    auto msg = b->Receive();
    if (!msg.has_value()) {
      break;
    }
    uint32_t id = 0;
    std::memcpy(&id, msg->payload.data(), 4);
    out.delivered.push_back(id);
  }
  return out;
}

TEST(FabricFaults, SameSeedSameFaultDecisions) {
  LossyRunResult r1 = RunLossyStream(0xFEE1);
  LossyRunResult r2 = RunLossyStream(0xFEE1);
  EXPECT_GT(r1.stats.dropped, 0u);
  EXPECT_GT(r1.stats.duplicated, 0u);
  EXPECT_EQ(r1.stats.dropped, r2.stats.dropped);
  EXPECT_EQ(r1.stats.duplicated, r2.stats.duplicated);
  EXPECT_EQ(r1.delivered, r2.delivered);

  // A different seed draws a different stream (overwhelmingly likely).
  LossyRunResult r3 = RunLossyStream(0xFEE2);
  EXPECT_NE(r1.delivered, r3.delivered);
}

TEST(FabricFaults, PartitionDropsSilentlyUntilHealed) {
  netsim::Fabric fabric;
  netsim::Endpoint* a = fabric.AddNode(1);
  netsim::Endpoint* b = fabric.AddNode(2);
  fabric.Partition(1, 2);
  EXPECT_TRUE(fabric.IsPartitioned(1, 2));
  EXPECT_TRUE(fabric.IsPartitioned(2, 1));
  // Sends "succeed" (the sender cannot tell, as with IP) but nothing lands.
  EXPECT_TRUE(a->Send(2, {1}).ok());
  EXPECT_TRUE(b->Send(1, {2}).ok());
  EXPECT_EQ(2u, fabric.fault_stats().partitioned);
  fabric.Heal(1, 2);
  EXPECT_FALSE(fabric.IsPartitioned(1, 2));
  EXPECT_TRUE(a->Send(2, {3}).ok());
  auto msg = b->Receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(3, msg->payload[0]);
}

// ---------------------------------------------------------------------------
// 2. ReliableChannel: exactly-once FIFO over a hostile link
// ---------------------------------------------------------------------------

TEST(ReliableChannel, ExactlyOnceFifoOverLossyLink) {
  netsim::Fabric fabric;
  fabric.SeedFaults(0xC0FFEE);
  netsim::LinkFaults faults;
  faults.drop_probability = 0.25;
  faults.duplicate_probability = 0.15;
  faults.delay_probability = 0.2;  // bypasses FIFO: reorders
  faults.delay_min_micros = 100;
  faults.delay_max_micros = 2000;
  fabric.SetDefaultFaults(faults);
  netsim::Endpoint* a = fabric.AddNode(1);
  netsim::Endpoint* b = fabric.AddNode(2);

  netsim::ReliableChannel sender(a);
  netsim::ReliableChannel receiver(b);
  base::Mutex mu("test.chaos.got");
  std::vector<uint32_t> got;
  receiver.StartReceiver([&](netsim::Message&& msg) {
    uint32_t id = 0;
    std::memcpy(&id, msg.payload.data(), 4);
    base::MutexLock lk(mu);
    got.push_back(id);
  });
  sender.StartReceiver([](netsim::Message&&) {});  // drains ACK traffic

  constexpr uint32_t kMessages = 200;
  for (uint32_t i = 0; i < kMessages; ++i) {
    std::vector<uint8_t> payload(4);
    std::memcpy(payload.data(), &i, 4);
    ASSERT_TRUE(sender.Send(2, std::move(payload)).ok());
  }
  for (int spin = 0; spin < 30000; ++spin) {
    {
      base::MutexLock lk(mu);
      if (got.size() >= kMessages) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  base::MutexLock lk(mu);
  ASSERT_EQ(kMessages, got.size()) << "lost or duplicated messages";
  for (uint32_t i = 0; i < kMessages; ++i) {
    ASSERT_EQ(i, got[i]) << "delivery out of order at " << i;
  }
  // The link really was hostile, and the channel really did repair it.
  EXPECT_GT(fabric.fault_stats().dropped, 0u);
  EXPECT_GT(fabric.fault_stats().duplicated, 0u);
  EXPECT_GT(sender.stats().retransmits, 0u);
  EXPECT_GT(receiver.stats().duplicates_dropped, 0u);

  for (int spin = 0; spin < 30000 && !sender.AllAcked(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(sender.AllAcked());
  sender.Shutdown();
  receiver.Shutdown();
}

// On a fault-free fabric the reliability layer must stay off the fast path:
// no retransmissions, and the only extra bytes are the DATA frame header
// (tag + varint sequence number) plus one small cumulative ACK per frame.
TEST(ReliableChannel, CleanFabricCostIsHeaderPlusAckOnly) {
  constexpr uint32_t kMessages = 256;
  constexpr size_t kPayload = 64;

  // Baseline: raw endpoint traffic.
  uint64_t raw_bytes = 0;
  {
    netsim::Fabric fabric;
    netsim::Endpoint* a = fabric.AddNode(1);
    netsim::Endpoint* b = fabric.AddNode(2);
    for (uint32_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(a->Send(2, std::vector<uint8_t>(kPayload, 0x5A)).ok());
    }
    for (uint32_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(b->Receive().has_value());
    }
    raw_bytes = a->stats().bytes_sent + b->stats().bytes_sent;
  }

  // Same workload through ReliableChannel. A long retransmission timeout
  // guarantees any retransmission seen here is a real bug, not scheduling
  // jitter on a loaded machine.
  uint64_t reliable_bytes = 0;
  uint64_t retransmits = 0;
  uint64_t acks = 0;
  {
    netsim::Fabric fabric;
    netsim::Endpoint* a = fabric.AddNode(1);
    netsim::Endpoint* b = fabric.AddNode(2);
    netsim::ReliableChannelOptions opts;
    opts.retransmit_initial_ms = 2000;
    netsim::ReliableChannel sender(a, opts);
    netsim::ReliableChannel receiver(b, opts);
    std::atomic<uint32_t> got{0};
    receiver.StartReceiver([&](netsim::Message&&) { got.fetch_add(1); });
    sender.StartReceiver([](netsim::Message&&) {});
    for (uint32_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(sender.Send(2, std::vector<uint8_t>(kPayload, 0x5A)).ok());
    }
    for (int spin = 0; spin < 30000; ++spin) {
      if (got.load() >= kMessages && sender.AllAcked()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(kMessages, got.load());
    EXPECT_TRUE(sender.AllAcked());
    retransmits = sender.stats().retransmits;
    acks = receiver.stats().acks_sent;
    sender.Shutdown();
    receiver.Shutdown();
    reliable_bytes = a->stats().bytes_sent + b->stats().bytes_sent;
  }

  EXPECT_EQ(0u, retransmits);
  ASSERT_GE(reliable_bytes, raw_bytes);
  double per_msg =
      static_cast<double>(reliable_bytes - raw_bytes) / static_cast<double>(kMessages);
  std::printf("clean-fabric reliability overhead: %.2f bytes/message "
              "(%llu raw -> %llu reliable, %llu ACK frames for %u DATA frames)\n",
              per_msg, static_cast<unsigned long long>(raw_bytes),
              static_cast<unsigned long long>(reliable_bytes),
              static_cast<unsigned long long>(acks), kMessages);
  EXPECT_LE(per_msg, 8.0);
}

// ---------------------------------------------------------------------------
// 3. Full chaos scenario
// ---------------------------------------------------------------------------

constexpr int kClients = 4;          // node ids 1..4; node 4 is the victim
constexpr rvm::NodeId kVictim = 4;
constexpr int kRegions = 2;
constexpr uint64_t kRegionSize = 8192;
constexpr int kLocksPerRegion = 2;
constexpr int kTotalTxns = 40;
constexpr int kVictimTxnsBeforeDeath = 5;
constexpr rvm::LockId kVictimLastLock = 22;  // managed by live node 1
// The storage server machine is killed (store offline + directories wiped)
// right before this driver step — well after the victim's death at step 19,
// so both recoveries compose in one run.
constexpr int kServerCrashTxn = 30;

rvm::LockId LockFor(int region, int k) { return region * 10 + k + 1; }

// Managers are all survivors: a dead manager is out of scope (DESIGN.md).
rvm::NodeId ManagerFor(int region, int k) {
  return static_cast<rvm::NodeId>(1 + (region + k) % (kClients - 1));
}

struct ChaosResult {
  std::vector<std::vector<uint8_t>> images;      // per region, survivors' view
  std::vector<std::vector<uint8_t>> recovered;   // per region, post-crash db
  netsim::FaultStats faults;
  uint64_t min_records_fetched = UINT64_MAX;     // across survivors
  uint64_t locks_reclaimed = 0;                  // across survivors
};

void RunChaosScenario(uint64_t seed, ChaosResult* out) {
  ChaosResult& result = *out;
  store::MemStore mem;
  store::CrashPointStore store(&mem);
  store.SetCrashHook([&mem] { mem.Crash(0); });
  auto cluster = std::make_unique<lbc::Cluster>(&store);
  netsim::Fabric* fabric = cluster->fabric();
  fabric->SeedFaults(seed);
  netsim::LinkFaults faults;
  faults.drop_probability = 0.15;       // >= 10% of messages dropped
  faults.duplicate_probability = 0.10;  // >= 5% duplicated
  faults.delay_probability = 0.10;      // delayed out of FIFO order
  faults.delay_min_micros = 100;
  faults.delay_max_micros = 3000;
  fabric->SetDefaultFaults(faults);

  for (int region = 1; region <= kRegions; ++region) {
    for (int k = 0; k < kLocksPerRegion; ++k) {
      cluster->DefineLock(LockFor(region, k), region, ManagerFor(region, k));
    }
  }
  std::vector<std::unique_ptr<lbc::Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    lbc::ClientOptions options;  // reliable_transport defaults on
    clients.push_back(
        std::move(*lbc::Client::Create(cluster.get(), 1 + i, options)));
    for (int region = 1; region <= kRegions; ++region) {
      EXPECT_TRUE(clients.back()->MapRegion(region, kRegionSize).ok());
    }
  }
  lbc::Client* victim = clients[kVictim - 1].get();

  // One deterministic driver: commit order, lock sequence numbers, and every
  // written byte depend only on the seed — however the fabric misbehaves.
  base::Rng rng(seed * 77 + 1);
  std::vector<uint64_t> committed_per_lock(100, 0);
  int victim_txns = 0;
  bool victim_dead = false;
  // Joined on every exit path (ASSERT failures return early).
  struct Joiner {
    std::thread t;
    ~Joiner() {
      if (t.joinable()) {
        t.join();
      }
    }
  } healer;

  auto run_txn = [&](lbc::Client* client, rvm::LockId lock, int region, int lock_k) {
    lbc::Transaction txn = client->Begin();
    ASSERT_TRUE(txn.Acquire(lock).ok());
    // Each lock guards its own disjoint slice of the region, so strict 2PL
    // serializes all conflicting writes.
    uint64_t base_off = static_cast<uint64_t>(lock_k) * (kRegionSize / kLocksPerRegion);
    int writes = 1 + static_cast<int>(rng.Uniform(4));
    for (int w = 0; w < writes; ++w) {
      uint64_t off = base_off + rng.Uniform(kRegionSize / kLocksPerRegion - 16);
      uint64_t len = 1 + rng.Uniform(12);
      ASSERT_TRUE(txn.SetRange(region, off, len).ok());
      for (uint64_t b = 0; b < len; ++b) {
        client->GetRegion(region)->data()[off + b] = static_cast<uint8_t>(rng.Next());
      }
    }
    ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
    ++committed_per_lock[lock];
  };

  for (int i = 0; i < kTotalTxns; ++i) {
    int writer = i % kClients;
    if (victim_dead && 1 + writer == static_cast<int>(kVictim)) {
      writer = i % (kClients - 1);  // survivors only, still deterministic
    }
    lbc::Client* client = clients[writer].get();

    if (i == kTotalTxns / 4) {
      // One-way partition between two survivors, healed by a timer halfway
      // through its life: the reliable channel retransmits across the gap.
      fabric->PartitionOneWay(1, 2);
      healer.t = std::thread([fabric] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        fabric->HealOneWay(1, 2);
      });
    }

    if (i == kServerCrashTxn) {
      // Whole-server-machine crash: the store goes dark and every
      // server-resident directory (mappings, baselines, applied reports,
      // record cache, liveness) is wiped. Client-resident state — lock
      // tokens and their sequence numbers — survives untouched.
      uint64_t epoch_before = cluster->ServerEpoch();
      store.SetOffline(true);
      cluster->KillServer();
      ASSERT_FALSE(cluster->ServerUp());

      // A survivor that tries to commit during the outage fails at the log
      // write and backs out cleanly: undo copies restore its image and the
      // locks release without consuming sequence numbers — the client's
      // "back off and retry later" path.
      {
        lbc::Client* blocked = clients[0].get();
        lbc::Transaction txn = blocked->Begin();
        ASSERT_TRUE(txn.Acquire(LockFor(1, 0)).ok());
        uint64_t off = rng.Uniform(kRegionSize / kLocksPerRegion - 16);
        ASSERT_TRUE(txn.SetRange(1, off, 8).ok());
        for (uint64_t b = 0; b < 8; ++b) {
          blocked->GetRegion(1)->data()[off + b] = static_cast<uint8_t>(rng.Next());
        }
        base::Status st = txn.Commit(rvm::CommitMode::kFlush);
        ASSERT_FALSE(st.ok()) << "commit must fail while the server is down";
      }

      // Power-cycle the machine: volatile store state is lost (kFlush
      // commits lose nothing), then the server reboots and rebuilds its
      // directory from the merged client logs (§3.5 at boot).
      mem.Crash(0);
      store.SetOffline(false);
      ASSERT_TRUE(cluster->RestartServer().ok());
      ASSERT_TRUE(cluster->ServerUp());
      EXPECT_EQ(epoch_before + 1, cluster->ServerEpoch());
      // The rebuilt baselines remember every sequence number the logs hold.
      for (int region = 1; region <= kRegions; ++region) {
        for (int k = 0; k < kLocksPerRegion; ++k) {
          rvm::LockId lock = LockFor(region, k);
          EXPECT_EQ(committed_per_lock[lock], cluster->BaselineSeq(lock))
              << "rebuilt baseline for lock " << lock;
        }
      }
      // Survivors notice the epoch bump and re-register their mappings and
      // applied positions; the interrupted writer retries in later steps.
      for (int s = 0; s < kClients - 1; ++s) {
        ASSERT_TRUE(clients[s]->RejoinServer().ok());
      }
    }

    if (!victim_dead && client == victim && victim_txns == kVictimTxnsBeforeDeath) {
      // Kill the victim mid-commit: it still holds the token for
      // kVictimLastLock from its previous transaction, so this commit needs
      // no lock traffic. The partition swallows the coherency broadcast —
      // the transaction is durable in the victim's log but reaches nobody.
      for (int s = 1; s < kClients; ++s) {
        fabric->PartitionOneWay(kVictim, s);
      }
      int region = kVictimLastLock / 10;
      int lock_k = static_cast<int>(kVictimLastLock % 10) - 1;
      run_txn(victim, kVictimLastLock, region, lock_k);
      victim->Disconnect();
      victim_dead = true;
      // Every survivor detects the death: the cluster merges the victim's
      // log (once), and each survivor reclaims the locks it manages.
      for (int s = 0; s < kClients - 1; ++s) {
        ASSERT_TRUE(clients[s]->OnPeerDeath(kVictim).ok());
      }
      continue;
    }

    int region = 1 + (i % kRegions);
    int lock_k = (i / kRegions) % kLocksPerRegion;
    rvm::LockId lock = LockFor(region, lock_k);
    if (!victim_dead && client == victim) {
      // The victim's second-to-last transaction parks the token it will
      // die with; its earlier ones run the normal workload.
      if (victim_txns == kVictimTxnsBeforeDeath - 1) {
        lock = kVictimLastLock;
        region = kVictimLastLock / 10;
        lock_k = static_cast<int>(kVictimLastLock % 10) - 1;
      }
      ++victim_txns;
    }
    run_txn(client, lock, region, lock_k);
  }
  if (healer.t.joinable()) {
    healer.t.join();
  }

  // Quiesce: every survivor reaches every lock's final sequence number —
  // including the victim's never-propagated commit, which only the server
  // record cache can supply.
  for (int region = 1; region <= kRegions; ++region) {
    for (int k = 0; k < kLocksPerRegion; ++k) {
      rvm::LockId lock = LockFor(region, k);
      for (int c = 0; c < kClients - 1; ++c) {
        ASSERT_TRUE(
            clients[c]->WaitForAppliedSeq(lock, committed_per_lock[lock], 60000))
            << "lock " << lock << " client " << clients[c]->node();
      }
    }
  }

  // Convergence across survivors.
  for (int region = 1; region <= kRegions; ++region) {
    const uint8_t* reference = clients[0]->GetRegion(region)->data();
    for (int c = 1; c < kClients - 1; ++c) {
      ASSERT_EQ(0,
                std::memcmp(reference, clients[c]->GetRegion(region)->data(),
                            kRegionSize))
          << "client " << clients[c]->node() << " diverged on region " << region;
    }
    result.images.emplace_back(reference, reference + kRegionSize);
  }
  result.faults = fabric->fault_stats();
  for (int c = 0; c < kClients - 1; ++c) {
    lbc::ClientStats stats = clients[c]->stats();
    result.min_records_fetched = std::min(result.min_records_fetched, stats.records_fetched);
    result.locks_reclaimed += stats.locks_reclaimed;
  }

  // Durability: crash everything and recover from the merged logs — every
  // node's log, the dead client's included.
  std::vector<std::string> logs;
  for (int c = 0; c < kClients; ++c) {
    logs.push_back(rvm::LogFileName(1 + c));
  }
  clients.clear();
  mem.Crash(0);
  EXPECT_TRUE(rvm::ReplayLogsIntoDatabase(&store, logs).ok());
  for (int region = 1; region <= kRegions; ++region) {
    auto file = std::move(*store.Open(rvm::RegionFileName(region), false));
    std::vector<uint8_t> recovered(kRegionSize, 0);
    auto file_size = file->Size();
    EXPECT_TRUE(file_size.ok());
    EXPECT_TRUE(file->ReadExact(0, recovered.data(),
                                std::min<uint64_t>(*file_size, kRegionSize))
                    .ok());
    result.recovered.push_back(std::move(recovered));
  }
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, LossyPartitionedClusterConvergesAndRecovers) {
  ChaosResult run;
  RunChaosScenario(GetParam(), &run);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  // The fabric really was hostile.
  EXPECT_GT(run.faults.dropped, 0u);
  EXPECT_GT(run.faults.duplicated, 0u);
  EXPECT_GT(run.faults.partitioned, 0u);
  // Token reclamation ran, and every survivor re-fetched the victim's
  // unpropagated commit from the server record cache.
  EXPECT_GT(run.locks_reclaimed, 0u);
  EXPECT_GE(run.min_records_fetched, 1u);
  // Survivors' cached images equal the crash-recovered database files.
  ASSERT_EQ(static_cast<size_t>(kRegions), run.recovered.size());
  for (int region = 0; region < kRegions; ++region) {
    EXPECT_EQ(run.images[region], run.recovered[region])
        << "recovered database diverged on region " << (region + 1);
  }
}

TEST(ChaosDeterminism, SameSeedSameFinalState) {
  ChaosResult r1;
  RunChaosScenario(0xDE7E12, &r1);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ChaosResult r2;
  RunChaosScenario(0xDE7E12, &r2);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_EQ(r1.images.size(), r2.images.size());
  for (size_t region = 0; region < r1.images.size(); ++region) {
    EXPECT_EQ(r1.images[region], r2.images[region])
        << "final image not deterministic for region " << (region + 1);
    EXPECT_EQ(r1.images[region], r1.recovered[region]);
    EXPECT_EQ(r2.images[region], r2.recovered[region]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<uint64_t>(0, 3));

// ---------------------------------------------------------------------------
// 4. Gray-failure phase: slow link + slow disk, no false evictions
// ---------------------------------------------------------------------------

// A peer that is slow — degraded links, a laggy log disk, heartbeats arriving
// past the lease — is NOT dead. Mid-run, node 3's links pick up 1.5 ms of
// jittered delay, its log disk 2 ms per I/O, and its heartbeats stretch past
// the lease interval. The gray-aware detector must classify it suspect-slow
// (not expired), no eviction may fire while it can still commit, and the
// cluster must converge with the slow peer's transactions included. Only
// when its beats stop entirely does the detector report it — and the whole
// run must end with gray.false_evictions unchanged.
TEST(ChaosGray, SlowLinkAndSlowDiskConvergeWithoutFalseEviction) {
  constexpr rvm::RegionId kGrayRegion = 1;
  constexpr uint64_t kGrayRegionSize = 8192;
  constexpr rvm::NodeId kGrayNode = 3;  // the slow-but-alive peer
  const auto kLease = std::chrono::milliseconds(100);
  auto lock_for = [](int node) { return static_cast<rvm::LockId>(10 + node); };
  auto slice_for = [](int node) { return static_cast<uint64_t>(node - 1) * 2048; };

  store::MemStore mem;
  store::ResourceStore store(&mem);  // the slow-disk injection surface
  lbc::Cluster cluster(&store);
  cluster.SetGraySlackFactor(8);
  cluster.DefineLock(lock_for(1), kGrayRegion, 1);
  cluster.DefineLock(lock_for(2), kGrayRegion, 2);
  cluster.DefineLock(lock_for(3), kGrayRegion, 1);
  netsim::Fabric* fabric = cluster.fabric();

  // Healthy peers beat well inside the lease from their heartbeat threads;
  // the gray node's beats are driven below, slowly.
  lbc::ClientOptions fast;
  fast.heartbeat_interval_ms = 20;
  std::vector<std::unique_ptr<lbc::Client>> clients;
  clients.push_back(std::move(*lbc::Client::Create(&cluster, 1, fast)));
  clients.push_back(std::move(*lbc::Client::Create(&cluster, 2, fast)));
  clients.push_back(std::move(*lbc::Client::Create(&cluster, 3, lbc::ClientOptions{})));
  for (auto& c : clients) {
    ASSERT_TRUE(c->MapRegion(kGrayRegion, kGrayRegionSize).ok());
  }

  auto counter = [](const char* name) {
    return obs::MetricsRegistry::Global()->GetCounter(name)->value();
  };
  const uint64_t false_evictions_before = counter("gray.false_evictions");
  const uint64_t delays_before = counter("store.resource.delays");

  // The membership service: evict whatever the lease check reports.
  std::atomic<bool> stop_detector{false};
  std::atomic<int> evictions{0};
  std::thread detector([&] {
    while (!stop_detector.load(std::memory_order_acquire)) {
      for (rvm::NodeId node : cluster.LeaseExpired(kLease)) {
        cluster.DeclareDead(node);
        evictions.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
  });

  // Seed the gray node's gap EWMA with two quick beats, then beat at 120 ms
  // — past the 100 ms lease every cycle, far inside the stretched deadline
  // (slack 8 × EWMA ≥ 320 ms and growing as the EWMA learns the slow rate).
  cluster.NoteAlive(kGrayNode);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  cluster.NoteAlive(kGrayNode);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  cluster.NoteAlive(kGrayNode);
  std::atomic<bool> stop_beats{false};
  std::thread slow_beater([&] {
    while (!stop_beats.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      cluster.NoteAlive(kGrayNode);
    }
  });

  auto commit_round = [&](int round) {
    for (int n = 1; n <= 3; ++n) {
      lbc::Client* c = clients[n - 1].get();
      lbc::Transaction txn = c->Begin();
      ASSERT_TRUE(txn.Acquire(lock_for(n)).ok());
      uint64_t off = slice_for(n) + static_cast<uint64_t>(round % 16) * 64;
      ASSERT_TRUE(txn.SetRange(kGrayRegion, off, 32).ok());
      std::memset(c->GetRegion(kGrayRegion)->data() + off,
                  static_cast<uint8_t>(n * 16 + round), 32);
      ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok())
          << "node " << n << " round " << round;
    }
  };

  // Phase 1: healthy traffic.
  int rounds = 0;
  for (; rounds < 10; ++rounds) {
    commit_round(rounds);
  }

  // Phase 2: gray injection mid-run — every link touching node 3 degrades
  // (slow, FIFO-preserving, NOT lossy: a gray link is not a partition), and
  // its log disk picks up per-I/O latency. The slow peer must keep
  // committing straight through.
  for (rvm::NodeId peer : {rvm::NodeId{1}, rvm::NodeId{2}}) {
    fabric->DegradeLink(kGrayNode, peer, 1500, 500);
    fabric->DegradeLink(peer, kGrayNode, 1500, 500);
  }
  store.InjectLatency(rvm::LogFileName(kGrayNode), 2'000'000, 500'000);
  for (; rounds < 22; ++rounds) {
    commit_round(rounds);
  }

  // The detector saw the slow peer cross its lease and held fire: it shows
  // up as suspect-slow on some poll (its beats land ~20 ms past the lease),
  // and nobody was evicted.
  bool saw_suspect = false;
  for (int spin = 0; spin < 300 && !saw_suspect; ++spin) {
    cluster.LeaseExpired(kLease);  // refreshes the suspicion set
    for (rvm::NodeId node : cluster.SuspectSlow()) {
      saw_suspect |= node == kGrayNode;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_suspect) << "slow peer never classified suspect-slow";
  EXPECT_EQ(0, evictions.load()) << "a live (slow) peer was evicted";

  // Convergence with the gray failures still active: everyone reaches every
  // lock's final sequence number and the images agree byte-for-byte —
  // the slow peer's tokens were never reclaimed, its commits all landed.
  for (int n = 1; n <= 3; ++n) {
    for (auto& c : clients) {
      ASSERT_TRUE(c->WaitForAppliedSeq(lock_for(n), static_cast<uint64_t>(rounds),
                                       60000))
          << "lock " << lock_for(n) << " client " << c->node();
    }
  }
  for (size_t i = 1; i < clients.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(clients[0]->GetRegion(kGrayRegion)->data(),
                             clients[i]->GetRegion(kGrayRegion)->data(),
                             kGrayRegionSize))
        << "client " << clients[i]->node() << " diverged";
  }

  // The injections really happened.
  EXPECT_GT(fabric->fault_stats().degraded, 0u);
  EXPECT_GT(counter("store.resource.delays"), delays_before);

  // Now the gray node goes silent for real. The stretched deadline delays
  // the verdict (by design) but cannot suppress it: with no beats at all
  // the detector eventually reports and evicts it.
  stop_beats.store(true, std::memory_order_release);
  slow_beater.join();
  for (int spin = 0; spin < 1000 && evictions.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(1, evictions.load()) << "a truly dead node must still expire";
  stop_detector.store(true, std::memory_order_release);
  detector.join();

  // Nobody beat after being declared dead: every eviction was of a node
  // that had actually stopped.
  EXPECT_EQ(false_evictions_before, counter("gray.false_evictions"));
}

// ---------------------------------------------------------------------------
// 5. Incremental-recovery chaos: restarts racing committers, scrubber, drainer
// ---------------------------------------------------------------------------

// The server machine is power-cycled twice mid-run with recovery mode set to
// incremental. Each reboot comes back serving immediately (the boot pass only
// indexes the merged logs) while three committer threads, a scrubber thread
// driving TryRepairRegion, and the cluster's own background drainer all race
// over the same store. The first reboot's drainer is deliberately frozen on
// the database mutex while committers pile up more than a dozen new commits,
// then released straight into the second kill — so the second power cut
// provably races an active drain. Afterward everything must converge: every
// client reaches every lock's final sequence number, the images agree
// byte-for-byte, a full eager replay of the untrimmed logs reproduces exactly
// those bytes, and every database page passes sidecar verification.
//
// Committer attempts are gated (not mid-flight) across the kill/reboot edge
// itself: a commit issued against a half-rebuilt directory would broadcast to
// an empty peer set by design, which is a directory-rebuild property, not the
// recovery race under test here.
TEST(ChaosRecovery, IncrementalRestartsRaceCommittersScrubberAndDrainer) {
  constexpr int kNodes = 3;
  constexpr int kRecRegions = 2;
  constexpr uint64_t kRecRegionSize = 8192;
  constexpr int kRounds = 48;           // successful commits per committer
  constexpr int kFirstKillAfter = 10;   // min successes before the first kill
  constexpr int kSecondKillAfter = 26;  // ... and before the second
  auto lock_for = [](int region, int node) {
    return static_cast<rvm::LockId>(region * 100 + node);
  };
  auto slice_for = [](int node) { return static_cast<uint64_t>(node - 1) * 2048; };

  store::MemStore mem;
  store::CrashPointStore store(&mem);
  store.SetCrashHook([&mem] { mem.Crash(0); });
  lbc::Cluster cluster(&store);
  cluster.SetRecoveryMode(lbc::Cluster::RecoveryMode::kIncremental);
  netsim::Fabric* fabric = cluster.fabric();
  fabric->SeedFaults(0x19C1);
  netsim::LinkFaults faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  faults.delay_probability = 0.05;
  faults.delay_min_micros = 100;
  faults.delay_max_micros = 1000;
  fabric->SetDefaultFaults(faults);
  // Every node manages its own locks, so Acquire stays local and committers
  // never block on each other — only on the machinery under test.
  for (int region = 1; region <= kRecRegions; ++region) {
    for (int n = 1; n <= kNodes; ++n) {
      cluster.DefineLock(lock_for(region, n), region, static_cast<rvm::NodeId>(n));
    }
  }
  rvm::Scrubber scrubber(&store);
  cluster.SetScrubber(&scrubber);

  lbc::ClientOptions options;
  options.heartbeat_interval_ms = 20;  // fast epoch-bump detection -> rejoin
  std::vector<std::unique_ptr<lbc::Client>> clients;
  for (int n = 1; n <= kNodes; ++n) {
    clients.push_back(std::move(*lbc::Client::Create(&cluster, n, options)));
    for (int region = 1; region <= kRecRegions; ++region) {
      ASSERT_TRUE(clients.back()->MapRegion(region, kRecRegionSize).ok());
    }
  }

  auto counter = [](const char* name) {
    return obs::MetricsRegistry::Global()->GetCounter(name)->value();
  };
  const uint64_t lazy_before =
      counter("recovery.pages_on_demand") + counter("recovery.pages_background");

  std::atomic<bool> give_up{false};
  std::atomic<bool> gate_open{true};
  std::atomic<int> active_txns{0};
  std::atomic<uint64_t> committed[kRecRegions + 1][kNodes + 1] = {};
  std::atomic<int> progress[kNodes + 1] = {};

  auto committer = [&](int n) {
    lbc::Client* client = clients[n - 1].get();
    int round = 0;
    while (round < kRounds && !give_up.load(std::memory_order_acquire)) {
      if (!gate_open.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      active_txns.fetch_add(1, std::memory_order_acq_rel);
      int region = 1 + (round % kRecRegions);
      bool ok = false;
      {
        lbc::Transaction txn = client->Begin();
        uint64_t off = slice_for(n) + static_cast<uint64_t>(round % 16) * 64;
        if (txn.Acquire(lock_for(region, n)).ok() &&
            txn.SetRange(region, off, 48).ok()) {
          std::memset(client->GetRegion(region)->data() + off,
                      static_cast<uint8_t>(n * 32 + round), 48);
          ok = txn.Commit(rvm::CommitMode::kFlush).ok();
        }
      }
      active_txns.fetch_sub(1, std::memory_order_acq_rel);
      if (ok) {
        committed[region][n].fetch_add(1, std::memory_order_relaxed);
        progress[n].fetch_add(1, std::memory_order_release);
        ++round;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  };

  std::atomic<bool> stop_scrub{false};
  std::thread scrub_thread([&] {
    while (!stop_scrub.load(std::memory_order_acquire)) {
      for (int region = 1; region <= kRecRegions; ++region) {
        cluster.TryRepairRegion(region);  // false while offline/unrepairable
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> committers;
  struct Stopper {  // joins on every exit path, ASSERT returns included
    std::function<void()> fn;
    ~Stopper() { fn(); }
  } stopper{[&] {
    give_up.store(true, std::memory_order_release);
    stop_scrub.store(true, std::memory_order_release);
    for (std::thread& t : committers) {
      if (t.joinable()) {
        t.join();
      }
    }
    if (scrub_thread.joinable()) {
      scrub_thread.join();
    }
  }};
  for (int n = 1; n <= kNodes; ++n) {
    committers.emplace_back(committer, n);
  }

  auto wait_progress = [&](int target) {
    for (int spin = 0; spin < 60000; ++spin) {
      bool reached = true;
      for (int n = 1; n <= kNodes; ++n) {
        reached &= progress[n].load(std::memory_order_acquire) >= target;
      }
      if (reached) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };
  // Parks committer attempts (without interrupting one mid-flight) so the
  // power cut below tears the machine, not a half-issued commit.
  auto close_gate = [&] {
    gate_open.store(false, std::memory_order_release);
    while (active_txns.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  ASSERT_TRUE(wait_progress(kFirstKillAfter));

  // --- first power cycle: reboot serving, drainer frozen under load -------
  close_gate();
  store.SetOffline(true);
  cluster.KillServer();
  mem.Crash(0);
  store.SetOffline(false);
  {
    base::MutexLock stall(cluster.DbMutex());
    ASSERT_TRUE(cluster.RestartServer().ok());
    // Serving with every indexed page still pending: that IS the tentpole.
    EXPECT_TRUE(cluster.RecoveryActive());
    EXPECT_GT(cluster.RecoveryPendingPages(), 0u);
    // Re-register mappings before commits resume: a broadcast against the
    // still-empty directory would reach nobody, and catch-up fetches only
    // run on Acquire — a peer that never takes this lock would stay behind.
    for (auto& client : clients) {
      ASSERT_TRUE(client->RejoinServer().ok());
    }
    gate_open.store(true, std::memory_order_release);
    // Committers make real progress against a server whose recovery drain is
    // frozen on the database mutex — serving never waited for replay.
    ASSERT_TRUE(wait_progress(kSecondKillAfter));
    EXPECT_TRUE(cluster.RecoveryActive());
  }

  // --- second power cycle: the cut races the just-released drainer --------
  close_gate();
  store.SetOffline(true);
  cluster.KillServer();
  mem.Crash(0);
  store.SetOffline(false);
  {
    base::MutexLock stall(cluster.DbMutex());
    ASSERT_TRUE(cluster.RestartServer().ok());
    EXPECT_TRUE(cluster.RecoveryActive());
    for (auto& client : clients) {
      ASSERT_TRUE(client->RejoinServer().ok());
    }
    gate_open.store(true, std::memory_order_release);
  }

  for (std::thread& t : committers) {
    t.join();
  }
  stop_scrub.store(true, std::memory_order_release);
  scrub_thread.join();
  ASSERT_TRUE(cluster.DrainRecovery().ok());
  EXPECT_FALSE(cluster.RecoveryActive());

  // Convergence: every client reaches every lock's final sequence number and
  // the images agree byte-for-byte.
  for (int region = 1; region <= kRecRegions; ++region) {
    for (int n = 1; n <= kNodes; ++n) {
      uint64_t seq = committed[region][n].load(std::memory_order_acquire);
      for (auto& client : clients) {
        ASSERT_TRUE(client->WaitForAppliedSeq(lock_for(region, n), seq, 60000))
            << "lock " << lock_for(region, n) << " client " << client->node();
      }
    }
  }
  std::vector<std::vector<uint8_t>> images;
  for (int region = 1; region <= kRecRegions; ++region) {
    const uint8_t* reference = clients[0]->GetRegion(region)->data();
    for (size_t i = 1; i < clients.size(); ++i) {
      ASSERT_EQ(0, std::memcmp(reference, clients[i]->GetRegion(region)->data(),
                               kRecRegionSize))
          << "client " << clients[i]->node() << " diverged on region " << region;
    }
    images.emplace_back(reference, reference + kRecRegionSize);
  }
  // Lazy replay really carried pages (on demand via the scrubber's repair
  // path and EnsureRegionRecovered, or in the background drain).
  EXPECT_GT(counter("recovery.pages_on_demand") +
                counter("recovery.pages_background"),
            lazy_before);

  // Durability: a clean eager replay of the untrimmed logs reproduces the
  // survivors' bytes exactly, and every page passes sidecar verification —
  // two interrupted incremental recoveries left no trace.
  clients.clear();
  std::vector<std::string> logs;
  for (int n = 1; n <= kNodes; ++n) {
    logs.push_back(rvm::LogFileName(n));
  }
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, logs).ok());
  for (int region = 1; region <= kRecRegions; ++region) {
    auto file = std::move(*store.Open(rvm::RegionFileName(region), false));
    auto file_size = file->Size();
    ASSERT_TRUE(file_size.ok());
    std::vector<uint8_t> recovered(kRecRegionSize, 0);
    ASSERT_TRUE(file->ReadExact(0, recovered.data(),
                                std::min<uint64_t>(*file_size, kRecRegionSize))
                    .ok());
    EXPECT_EQ(images[region - 1], recovered)
        << "eager replay diverged on region " << region;
    auto failed = rvm::VerifyImagePages(&store, region, recovered.data(),
                                        recovered.size(), *file_size);
    ASSERT_TRUE(failed.ok()) << failed.status().ToString();
    EXPECT_TRUE(failed->empty()) << "region " << region << " page "
                                 << (*failed)[0] << " failed verification";
  }
}

// The integrity scrubber loops full-speed in a background thread while two
// clients commit continuously. Over a single store the scrubber never writes
// to a live log (log repair needs replicas and quiesce), so this pins the
// read-side concurrency contract: scanning frame chains under active
// appends and verifying pages under an unchanging database never produces a
// false positive — and TSan gets to watch the whole interleaving. A final
// quiesced replay + scrub must come up spotless.
TEST(ChaosScrub, ScrubberRunsConcurrentlyWithCommits) {
  constexpr rvm::RegionId kScrubRegion = 1;
  constexpr rvm::LockId kLockA = 11;
  constexpr rvm::LockId kLockB = 12;
  constexpr uint64_t kScrubRegionSize = 4 * 8192;

  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLockA, kScrubRegion, 1);
  cluster.DefineLock(kLockB, kScrubRegion, 2);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  ASSERT_TRUE(a->MapRegion(kScrubRegion, kScrubRegionSize).ok());
  ASSERT_TRUE(b->MapRegion(kScrubRegion, kScrubRegionSize).ok());

  // Each lock guards its own page, so the two clients never conflict.
  auto commit = [&](lbc::Client* c, rvm::LockId lock, uint64_t off, uint8_t v) {
    lbc::Transaction txn = c->Begin();
    ASSERT_TRUE(txn.Acquire(lock).ok());
    ASSERT_TRUE(txn.SetRange(kScrubRegion, off, 64).ok());
    std::memset(c->GetRegion(kScrubRegion)->data() + off, v, 64);
    ASSERT_TRUE(txn.Commit(rvm::CommitMode::kFlush).ok());
  };
  // Seed the database file + checksum sidecar so the page scrub has work.
  commit(a.get(), kLockA, 0, 1);
  commit(b.get(), kLockB, 8192, 2);
  ASSERT_TRUE(
      cluster.ReplayAndRecordBaselines({rvm::LogFileName(1), rvm::LogFileName(2)})
          .ok());

  rvm::Scrubber scrubber(&store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrubs{0};
  std::thread scrub_thread([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto report = scrubber.ScrubOnce();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(0u, report->page_mismatches);
      EXPECT_EQ(0u, report->log_corruptions);
      EXPECT_EQ(0u, report->unrepairable);
      scrubs.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Commit until the scrubber has demonstrably overlapped the write load
  // (at least two full passes), with a floor so fast hosts still get a real
  // workload and a generous ceiling so a starved scrub thread on a loaded
  // single-core machine ends the test rather than hanging it.
  for (int i = 0; i < 150 || (scrubs.load(std::memory_order_relaxed) < 2 &&
                              i < 200000);
       ++i) {
    commit(a.get(), kLockA, static_cast<uint64_t>(i % 64) * 100,
           static_cast<uint8_t>(i));
    commit(b.get(), kLockB, 8192 + static_cast<uint64_t>(i % 64) * 100,
           static_cast<uint8_t>(i + 1));
  }
  stop.store(true, std::memory_order_release);
  scrub_thread.join();
  EXPECT_GE(scrubs.load(std::memory_order_relaxed), 1u);

  // Quiesce, fold the logs into the database, and verify end state.
  a.reset();
  b.reset();
  ASSERT_TRUE(
      cluster.ReplayAndRecordBaselines({rvm::LogFileName(1), rvm::LogFileName(2)})
          .ok());
  auto final_report = scrubber.ScrubOnce();
  ASSERT_TRUE(final_report.ok());
  EXPECT_TRUE(final_report->clean());
  EXPECT_GE(final_report->log_records_scanned, 2u);
}

}  // namespace
