// Resource-exhaustion and gray-failure resilience.
//
// Four families of scenarios, all driven through the public APIs:
//
//   * Log-quota backpressure (RvmOptions watermarks): a commit that hits the
//     hard watermark stalls — never aborts — while the trim hook checkpoints
//     and frees log space; the constrained run must land byte-identical to
//     an unconstrained one. When no trim can free space the commit fails
//     with RESOURCE_EXHAUSTED and the transaction stays active, so an
//     out-of-band trim plus retry commits the same transaction.
//
//   * Crash-during-ENOSPC sweep: the CrashExplorer's configure_machine hook
//     puts a byte quota on the simulated disk *under* the crash point, and a
//     trim-on-ENOSPC workload is crashed before every mutating store op
//     (plus torn-tail variants), across several quota sizes. Recovery must
//     restore a committed prefix every time — disk-full plus power-cut is
//     the paper's §3.5 trim machinery under its worst case.
//
//   * Server admission control: a full commit/fetch queue sheds with
//     OVERLOADED and a doubling retry-after hint; a shed Commit leaves the
//     transaction open, and the client's jittered backoff retries it to
//     completion once the queue drains.
//
//   * Gray liveness: a slow-but-beating node is classified suspect-slow
//     (withheld from LeaseExpired) instead of evicted, a genuinely dead node
//     still expires, and an acquire with an op deadline fails with
//     DEADLINE_EXCEEDED instead of blocking forever behind a slow peer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/lbc/client.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/rvm/crash_explorer.h"
#include "src/rvm/recovery.h"
#include "src/rvm/rvm.h"
#include "src/rvm/types.h"
#include "src/store/crash_point_store.h"
#include "src/store/durable_store.h"
#include "src/store/mem_store.h"

namespace {

class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};

const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global()->GetCounter(name)->value();
}

// --- log-quota backpressure -------------------------------------------------

constexpr rvm::RegionId kBpRegion = 3;
constexpr rvm::LockId kBpLock = 33;
constexpr uint64_t kBpWrite = 32;  // bytes modified per transaction
constexpr int kBpTxns = 12;
constexpr uint64_t kBpRegionBytes = kBpTxns * kBpWrite;

// One framed log record for a kBpWrite-byte transaction, measured on a
// throwaway node so the watermark tests scale with the wire format instead
// of hard-coding header sizes.
uint64_t MeasureRecordBytes() {
  store::MemStore mem;
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, rvm::RvmOptions{}));
  EXPECT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());
  rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
  EXPECT_TRUE(node->SetRange(txn, kBpRegion, 0, kBpWrite).ok());
  EXPECT_TRUE(node->SetLockId(txn, kBpLock, 1).ok());
  EXPECT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  return node->log_bytes();
}

// Runs the fixed backpressure workload; returns OK or the first commit
// error. `node` must have kBpRegion mapped. Each transaction fills its own
// kBpWrite slice with a distinct byte so prefixes are distinguishable.
base::Status RunBackpressureWorkload(rvm::Rvm* node) {
  for (int i = 0; i < kBpTxns; ++i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    RETURN_IF_ERROR(node->SetRange(txn, kBpRegion, i * kBpWrite, kBpWrite));
    std::memset(node->GetRegion(kBpRegion)->data() + i * kBpWrite,
                static_cast<uint8_t>(0x40 + i), kBpWrite);
    RETURN_IF_ERROR(node->SetLockId(txn, kBpLock, static_cast<uint64_t>(i) + 1));
    RETURN_IF_ERROR(node->EndTransaction(txn, rvm::CommitMode::kFlush));
  }
  return base::OkStatus();
}

base::Result<std::vector<uint8_t>> ReadWholeFile(store::DurableStore* s,
                                                 const std::string& name,
                                                 uint64_t expect_at_most) {
  std::vector<uint8_t> out(expect_at_most, 0);
  ASSIGN_OR_RETURN(bool exists, s->Exists(name));
  if (!exists) {
    return out;
  }
  ASSIGN_OR_RETURN(auto file, s->Open(name, /*create=*/false));
  ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size > 0) {
    RETURN_IF_ERROR(
        file->ReadExact(0, out.data(), std::min<uint64_t>(size, expect_at_most)));
  }
  return out;
}

TEST(Backpressure, HardWatermarkStallsAndTrimsInsteadOfFailing) {
  const uint64_t rec = MeasureRecordBytes();
  ASSERT_GT(rec, kBpWrite);

  // Unconstrained reference run.
  store::MemStore free_mem;
  auto free_node = std::move(*rvm::Rvm::Open(&free_mem, 1, rvm::RvmOptions{}));
  ASSERT_TRUE(free_node->MapRegion(kBpRegion, kBpRegionBytes).ok());
  ASSERT_TRUE(RunBackpressureWorkload(free_node.get()).ok());

  // Constrained run: the log may hold at most ~2.5 records, so most commits
  // hit the hard watermark and must ride a trim to completion.
  store::MemStore mem;
  rvm::RvmOptions options;
  options.log_hard_limit_bytes = rec * 5 / 2;
  options.backpressure_stall_ms = 5000;
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, options));
  ASSERT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());

  // §3.5 release valve: replay this node's log into the database, then trim
  // everything at or below the already-committed sequence numbers. Runs on
  // the stalled committer's own thread, without the instance lock.
  base::Status hook_status = base::OkStatus();
  uint64_t committed = 0;
  node->SetTrimHook([&](uint64_t used, uint64_t limit) {
    EXPECT_GE(used, limit);
    base::Status st = rvm::ReplayLogsIntoDatabase(&mem, {rvm::LogFileName(1)});
    if (st.ok()) {
      st = node->TrimLogWithBaselines({{kBpLock, committed}});
    }
    if (!st.ok() && hook_status.ok()) {
      hook_status = st;
    }
  });

  for (int i = 0; i < kBpTxns; ++i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, kBpRegion, i * kBpWrite, kBpWrite).ok());
    std::memset(node->GetRegion(kBpRegion)->data() + i * kBpWrite,
                static_cast<uint8_t>(0x40 + i), kBpWrite);
    ASSERT_TRUE(node->SetLockId(txn, kBpLock, static_cast<uint64_t>(i) + 1).ok());
    base::Status st = node->EndTransaction(txn, rvm::CommitMode::kFlush);
    ASSERT_TRUE(st.ok()) << "commit " << i << ": " << st.ToString();
    ++committed;
  }
  ASSERT_TRUE(hook_status.ok()) << hook_status.ToString();

  rvm::RvmStats stats = node->stats();
  EXPECT_GT(stats.backpressure_stalls, 0u);
  EXPECT_GT(stats.trim_requests, 0u);
  EXPECT_EQ(0u, stats.commits_exhausted);
  EXPECT_GT(stats.backpressure_stall_nanos, 0u);
  EXPECT_LT(node->log_bytes(), options.log_hard_limit_bytes + rec);

  // The quota changed *when* bytes moved, never *what* committed: cached
  // images and recovered database files match the unconstrained run.
  EXPECT_EQ(0, std::memcmp(node->GetRegion(kBpRegion)->data(),
                           free_node->GetRegion(kBpRegion)->data(), kBpRegionBytes));
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&mem, {rvm::LogFileName(1)}).ok());
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&free_mem, {rvm::LogFileName(1)}).ok());
  auto constrained = ReadWholeFile(&mem, rvm::RegionFileName(kBpRegion), kBpRegionBytes);
  auto unconstrained =
      ReadWholeFile(&free_mem, rvm::RegionFileName(kBpRegion), kBpRegionBytes);
  ASSERT_TRUE(constrained.ok());
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_EQ(*constrained, *unconstrained);
}

TEST(Backpressure, ExhaustedCommitFailsSoftlyAndRetriesAfterManualTrim) {
  const uint64_t rec = MeasureRecordBytes();
  store::MemStore mem;
  rvm::RvmOptions options;
  options.log_hard_limit_bytes = rec * 5 / 2;
  options.backpressure_stall_ms = 50;  // no trim hook: the stall must expire
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, options));
  ASSERT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());

  uint64_t committed = 0;
  rvm::TxnId stuck_txn = 0;
  base::Status stuck = base::OkStatus();
  for (int i = 0; i < kBpTxns && stuck.ok(); ++i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, kBpRegion, i * kBpWrite, kBpWrite).ok());
    std::memset(node->GetRegion(kBpRegion)->data() + i * kBpWrite,
                static_cast<uint8_t>(0x40 + i), kBpWrite);
    ASSERT_TRUE(node->SetLockId(txn, kBpLock, static_cast<uint64_t>(i) + 1).ok());
    stuck = node->EndTransaction(txn, rvm::CommitMode::kFlush);
    if (stuck.ok()) {
      ++committed;
    } else {
      stuck_txn = txn;
    }
  }

  // The log filled, nobody trimmed, and the stall budget expired: the commit
  // failed with RESOURCE_EXHAUSTED — a Status, not an abort() — and the
  // transaction is still active.
  ASSERT_FALSE(stuck.ok());
  EXPECT_EQ(base::StatusCode::kResourceExhausted, stuck.code()) << stuck.ToString();
  rvm::RvmStats stats = node->stats();
  EXPECT_GE(stats.backpressure_stalls, 1u);
  EXPECT_EQ(1u, stats.commits_exhausted);

  // Out-of-band trim, then retry the *same* transaction.
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&mem, {rvm::LogFileName(1)}).ok());
  ASSERT_TRUE(node->TrimLogWithBaselines({{kBpLock, committed}}).ok());
  ASSERT_LT(node->log_bytes(), options.log_hard_limit_bytes);
  ASSERT_TRUE(node->EndTransaction(stuck_txn, rvm::CommitMode::kFlush).ok());
  ++committed;

  // The retried commit is durably in the prefix.
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&mem, {rvm::LogFileName(1)}).ok());
  auto recovered = ReadWholeFile(&mem, rvm::RegionFileName(kBpRegion), kBpRegionBytes);
  ASSERT_TRUE(recovered.ok());
  for (uint64_t i = 0; i < committed; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(0x40 + i), (*recovered)[i * kBpWrite])
        << "transaction " << i << " missing after recovery";
  }
}

TEST(Backpressure, SoftWatermarkFiresTrimHookOnceWithoutStalling) {
  const uint64_t rec = MeasureRecordBytes();
  store::MemStore mem;
  rvm::RvmOptions options;
  options.log_soft_limit_bytes = rec * 5 / 2;  // hard limit stays disabled
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, options));
  ASSERT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());

  int fires = 0;
  uint64_t hook_used = 0;
  uint64_t hook_limit = 0;
  node->SetTrimHook([&](uint64_t used, uint64_t limit) {
    ++fires;
    hook_used = used;
    hook_limit = limit;
  });

  ASSERT_TRUE(RunBackpressureWorkload(node.get()).ok());

  // Edge-triggered: only the commit that crossed the watermark asked for a
  // trim, and — the hook having freed nothing — the log kept growing without
  // re-firing and without ever stalling a commit.
  EXPECT_EQ(1, fires);
  EXPECT_GE(hook_used, options.log_soft_limit_bytes);
  EXPECT_EQ(options.log_soft_limit_bytes, hook_limit);
  rvm::RvmStats stats = node->stats();
  EXPECT_EQ(1u, stats.trim_requests);
  EXPECT_EQ(0u, stats.backpressure_stalls);
  EXPECT_EQ(0u, stats.commits_exhausted);
}

TEST(Backpressure, MultipleStallersFireTrimHookOncePerEpisode) {
  const uint64_t rec = MeasureRecordBytes();
  store::MemStore mem;
  rvm::RvmOptions options;
  options.log_hard_limit_bytes = rec * 4;
  options.backpressure_stall_ms = 10000;
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, options));
  ASSERT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());

  // Phase 1 hook: counts firings but frees nothing, so the stall episode
  // stays open while more committers pile up behind the watermark.
  std::atomic<int> fires{0};
  node->SetTrimHook([&](uint64_t, uint64_t) { ++fires; });

  // Fill to the hard watermark.
  for (int i = 0; i < 4; ++i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, kBpRegion, i * kBpWrite, kBpWrite).ok());
    std::memset(node->GetRegion(kBpRegion)->data() + i * kBpWrite,
                static_cast<uint8_t>(0x40 + i), kBpWrite);
    ASSERT_TRUE(node->SetLockId(txn, kBpLock, static_cast<uint64_t>(i) + 1).ok());
    ASSERT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  }
  ASSERT_GE(node->log_bytes(), options.log_hard_limit_bytes);

  // Three committers stall at once.
  constexpr int kStallers = 3;
  std::vector<std::thread> stallers;
  std::vector<base::Status> results(kStallers);
  for (int s = 0; s < kStallers; ++s) {
    stallers.emplace_back([&, s] {
      rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
      uint64_t off = static_cast<uint64_t>(4 + s) * kBpWrite;
      base::Status st = node->SetRange(txn, kBpRegion, off, kBpWrite);
      if (st.ok()) {
        std::memset(node->GetRegion(kBpRegion)->data() + off,
                    static_cast<uint8_t>(0x44 + s), kBpWrite);
        st = node->SetLockId(txn, kBpLock, static_cast<uint64_t>(5 + s));
      }
      if (st.ok()) {
        st = node->EndTransaction(txn, rvm::CommitMode::kFlush);
      }
      results[s] = st;
    });
  }
  while (node->stats().backpressure_stalls < kStallers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every staller has now been through the stall loop; give them time to
  // (wrongly) stack extra trim requests. The episode guard is shared state,
  // so the second and third stallers must wait behind the first firing
  // instead of re-firing the hook themselves.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(1, fires.load());

  // End the episode with a real out-of-band trim; everyone commits.
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&mem, {rvm::LogFileName(1)}).ok());
  ASSERT_TRUE(node->TrimLogWithBaselines({{kBpLock, 4}}).ok());
  for (auto& t : stallers) {
    t.join();
  }
  for (int s = 0; s < kStallers; ++s) {
    EXPECT_TRUE(results[s].ok()) << "staller " << s << ": " << results[s].ToString();
  }
  EXPECT_EQ(1, fires.load());
  rvm::RvmStats stats = node->stats();
  EXPECT_EQ(1u, stats.trim_requests);
  EXPECT_EQ(static_cast<uint64_t>(kStallers), stats.backpressure_stalls);
  EXPECT_EQ(0u, stats.commits_exhausted);
}

TEST(Backpressure, SlowTrimHookDoesNotRefireAndDeadlineHolds) {
  const uint64_t rec = MeasureRecordBytes();
  store::MemStore mem;
  rvm::RvmOptions options;
  options.log_hard_limit_bytes = rec * 2;
  options.backpressure_stall_ms = 150;
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, options));
  ASSERT_TRUE(node->MapRegion(kBpRegion, kBpRegionBytes).ok());

  // A trim hook that runs far past the stall budget and frees nothing: the
  // commit's deadline expires *inside* the hook window, and must be honored
  // as soon as the stall loop gets the lock back.
  std::atomic<int> fires{0};
  node->SetTrimHook([&](uint64_t, uint64_t) {
    ++fires;
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });

  for (int i = 0; i < 2; ++i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, kBpRegion, i * kBpWrite, kBpWrite).ok());
    ASSERT_TRUE(node->SetLockId(txn, kBpLock, static_cast<uint64_t>(i) + 1).ok());
    ASSERT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  }
  ASSERT_GE(node->log_bytes(), options.log_hard_limit_bytes);

  rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
  ASSERT_TRUE(node->SetRange(txn, kBpRegion, 2 * kBpWrite, kBpWrite).ok());
  base::Status first = node->EndTransaction(txn, rvm::CommitMode::kFlush);
  EXPECT_EQ(base::StatusCode::kResourceExhausted, first.code()) << first.ToString();
  EXPECT_EQ(1, fires.load());

  // Retrying the same transaction re-enters the stall, but the episode is
  // still open (nothing trimmed), so the 400 ms hook must NOT re-fire: the
  // retry burns only its own 150 ms budget, in waits clamped to what is
  // left of it.
  auto start = std::chrono::steady_clock::now();
  base::Status second = node->EndTransaction(txn, rvm::CommitMode::kFlush);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(base::StatusCode::kResourceExhausted, second.code()) << second.ToString();
  EXPECT_EQ(1, fires.load());
  EXPECT_LT(elapsed.count(), 350) << "retry re-ran the slow trim hook";
  rvm::RvmStats stats = node->stats();
  EXPECT_EQ(2u, stats.commits_exhausted);
  EXPECT_EQ(1u, stats.trim_requests);
}

// --- crash-at-every-op during ENOSPC ----------------------------------------

constexpr rvm::RegionId kQRegion = 9;
constexpr rvm::LockId kQLock = 77;
constexpr uint64_t kQRegionBytes = 32;
constexpr uint64_t kQWrite = 4;
constexpr int kQTxns = 6;
constexpr uint8_t kQValues[kQTxns] = {0xA1, 0xB2, 0xC3, 0xD4, 0xE5, 0xF6};

using RegionBytes = std::vector<uint8_t>;

// shadow[k] = region bytes after the first k committed transactions.
std::vector<RegionBytes> BuildQuotaShadow() {
  std::vector<RegionBytes> shadow;
  RegionBytes state(kQRegionBytes, 0);
  shadow.push_back(state);
  for (int i = 0; i < kQTxns; ++i) {
    std::memset(state.data() + i * kQWrite, kQValues[i], kQWrite);
    shadow.push_back(state);
  }
  return shadow;
}

// Trim-on-ENOSPC workload harness for the crash sweep. Deterministic by
// construction: quota refusals are driven purely by byte counts (MemStore
// whole-fails the positional log write, leaving it retryable), so every
// replay issues the identical store-op sequence up to the injected crash.
// The rvm hard watermark is NOT used here — its stall is wall-clock-timed
// and would break the explorer's determinism contract.
class QuotaSweepHarness {
 public:
  QuotaSweepHarness(uint64_t quota, uint64_t budget, uint64_t seed)
      : shadow_(BuildQuotaShadow()) {
    options_.budget = budget;
    options_.seed = seed;
    options_.configure_machine = [quota](store::MemStore* mem) {
      mem->SetQuotaBytes(quota);
    };
  }

  rvm::CrashExplorer MakeExplorer() {
    return rvm::CrashExplorer(
        options_, [this](store::DurableStore* s) { return RunWorkload(s); },
        [this](store::DurableStore* s) { return Recover(s); },
        [this](store::DurableStore* s) { return Verify(s); });
  }

  // Feasibility probe: the workload must survive this quota on a crash-free
  // machine — recovery headroom comes from the early checkpoint below.
  base::Status RunWorkload(store::DurableStore* s) { return RunWorkloadImpl(s); }

  int enospc_commits() const { return enospc_commits_; }

 private:
  base::Status Checkpoint(store::DurableStore* s, rvm::Rvm* node, uint64_t seq) {
    RETURN_IF_ERROR(rvm::ReplayLogsIntoDatabase(s, {rvm::LogFileName(1)}));
    return node->TrimLogWithBaselines({{kQLock, seq}});
  }

  base::Status RunWorkloadImpl(store::DurableStore* s) {
    commits_ = 0;
    enospc_commits_ = 0;
    ASSIGN_OR_RETURN(auto node, rvm::Rvm::Open(s, 1, rvm::RvmOptions{}));
    RETURN_IF_ERROR(node->MapRegion(kQRegion, kQRegionBytes).status());
    uint64_t seq = 0;
    // Format: commit one full-region zero write and checkpoint it, so the
    // database file and its checksum sidecar exist durably at full size.
    // Every later replay — the mid-workload trims AND crash recovery —
    // writes into those files in place with zero growth, which is what
    // makes tight quotas survivable at every crash point. The zero write
    // leaves the region equal to shadow[0], so verification is unchanged.
    {
      rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
      RETURN_IF_ERROR(node->SetRange(txn, kQRegion, 0, kQRegionBytes));
      RETURN_IF_ERROR(node->SetLockId(txn, kQLock, seq + 1));
      RETURN_IF_ERROR(node->EndTransaction(txn, rvm::CommitMode::kFlush));
      ++seq;
      RETURN_IF_ERROR(Checkpoint(s, node.get(), seq));
    }
    for (int i = 0; i < kQTxns; ++i) {
      rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
      RETURN_IF_ERROR(node->SetRange(txn, kQRegion, i * kQWrite, kQWrite));
      std::memset(node->GetRegion(kQRegion)->data() + i * kQWrite, kQValues[i],
                  kQWrite);
      RETURN_IF_ERROR(node->SetLockId(txn, kQLock, seq + 1));
      base::Status st = node->EndTransaction(txn, rvm::CommitMode::kFlush);
      if (!st.ok() && st.code() == base::StatusCode::kResourceExhausted) {
        // Disk full: checkpoint (replay + trim below the committed
        // sequences) to free log bytes, then retry the same — still
        // active — transaction. Any other error (e.g. the injected
        // crash, UNAVAILABLE) propagates to the explorer untouched.
        ++enospc_commits_;
        RETURN_IF_ERROR(Checkpoint(s, node.get(), seq));
        st = node->EndTransaction(txn, rvm::CommitMode::kFlush);
      }
      RETURN_IF_ERROR(st);
      ++seq;
      ++commits_;
    }
    return base::OkStatus();
  }

  base::Status Recover(store::DurableStore* s) {
    return rvm::ReplayLogsIntoDatabase(s, {rvm::LogFileName(1)});
  }

  base::Status Verify(store::DurableStore* s) {
    ASSIGN_OR_RETURN(RegionBytes got,
                     ReadWholeFile(s, rvm::RegionFileName(kQRegion), kQRegionBytes));
    if (got == shadow_[commits_]) {
      return base::OkStatus();
    }
    if (commits_ + 1 < static_cast<int>(shadow_.size()) &&
        got == shadow_[commits_ + 1]) {
      return base::OkStatus();  // in-flight commit's record was complete
    }
    return base::Internal("recovered database matches neither the " +
                          std::to_string(commits_) + "-commit prefix nor the " +
                          std::to_string(commits_ + 1) + "-commit prefix");
  }

  rvm::CrashExplorerOptions options_;
  std::vector<RegionBytes> shadow_;
  int commits_ = 0;         // kFlush commits that returned in the current run
  int enospc_commits_ = 0;  // commits that rode the trim-and-retry path
};

// The quota steps for the sweep, derived from a measured unconstrained run
// so they track the wire format: `full` fits the whole workload, `tight`
// forces at least one mid-workload ENOSPC + trim + retry, `tighter` forces
// several.
struct QuotaPlan {
  uint64_t tighter;
  uint64_t tight;
  uint64_t full;
};

QuotaPlan MeasureQuotaPlan() {
  // Unconstrained footprint of the sweep workload...
  QuotaSweepHarness probe(/*quota=*/0, /*budget=*/1, /*seed=*/1);
  store::MemStore mem;
  EXPECT_TRUE(probe.RunWorkload(&mem).ok());
  const uint64_t full = mem.used_bytes();
  // ... and one log record's growth, measured in place.
  store::MemStore rec_mem;
  auto node = std::move(*rvm::Rvm::Open(&rec_mem, 1, rvm::RvmOptions{}));
  EXPECT_TRUE(node->MapRegion(kQRegion, kQRegionBytes).ok());
  auto commit = [&](int i) {
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    EXPECT_TRUE(node->SetRange(txn, kQRegion, 0, kQWrite).ok());
    EXPECT_TRUE(node->SetLockId(txn, kQLock, static_cast<uint64_t>(i) + 1).ok());
    EXPECT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  };
  commit(0);
  uint64_t before = rec_mem.used_bytes();
  commit(1);
  const uint64_t rec = rec_mem.used_bytes() - before;
  EXPECT_GT(rec, 0u);
  return QuotaPlan{full - 2 * rec, full - rec, full + rec};
}

TEST(QuotaCrashSweep, EveryCrashDuringEnospcRecoversToCommittedPrefix) {
  const uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  const uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  const QuotaPlan plan = MeasureQuotaPlan();

  int quota_index = 0;
  for (uint64_t quota : {plan.tighter, plan.tight, plan.full}) {
    SCOPED_TRACE("quota=" + std::to_string(quota));
    QuotaSweepHarness harness(quota, budget, seed + quota_index++);

    // The quota must be survivable crash-free, and the tight settings must
    // actually exercise the ENOSPC → trim → retry path the sweep is after.
    {
      store::MemStore mem;
      mem.SetQuotaBytes(quota);
      base::Status st = harness.RunWorkload(&mem);
      ASSERT_TRUE(st.ok()) << st.ToString();
      if (quota <= plan.tight) {
        ASSERT_GT(harness.enospc_commits(), 0);
        ASSERT_GT(mem.enospc_count(), 0u);
      }
    }

    rvm::CrashExplorer explorer = harness.MakeExplorer();
    rvm::CrashExplorerReport report;
    base::Status status = explorer.ExploreWorkloadCrashes(&report);
    ASSERT_TRUE(status.ok()) << status.ToString();
    std::printf("quota %llu: %llu ops, %llu schedules (%llu torn)\n",
                static_cast<unsigned long long>(quota),
                static_cast<unsigned long long>(report.workload_ops),
                static_cast<unsigned long long>(report.schedules_run),
                static_cast<unsigned long long>(report.torn_schedules_run));
    EXPECT_GT(report.workload_ops, 10u);
    EXPECT_GT(report.schedules_run, 0u);
    EXPECT_GT(report.torn_schedules_run, 0u);
    if (budget == 0) {
      EXPECT_GE(report.schedules_run, report.workload_ops);
    }
  }
}

TEST(QuotaCrashSweep, RecoveryUnderQuotaIsIdempotent) {
  const uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  const uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  const QuotaPlan plan = MeasureQuotaPlan();
  QuotaSweepHarness harness(plan.tight, budget, seed);
  rvm::CrashExplorer explorer = harness.MakeExplorer();
  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreRecoveryCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(report.recovery_ops, 0u);
  EXPECT_GT(report.nested_schedules_run, 0u);
}

// --- server admission control -----------------------------------------------

constexpr rvm::RegionId kAdmRegion = 5;
constexpr rvm::LockId kAdmLock = 55;

TEST(Admission, ShedsAtLimitWithDoublingRetryAfterHint) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.SetAdmissionLimit(lbc::Cluster::ServerQueue::kCommit, 1);

  ASSERT_TRUE(cluster.Admit(lbc::Cluster::ServerQueue::kCommit).ok());
  EXPECT_EQ(1u, cluster.Inflight(lbc::Cluster::ServerQueue::kCommit));

  // While saturated, the retry-after hint doubles 1, 2, 4, ... and caps.
  const uint64_t want_hints[] = {1, 2, 4, 8, 16, 32, 64, 64};
  for (uint64_t want : want_hints) {
    uint64_t hint = 0;
    base::Status st = cluster.Admit(lbc::Cluster::ServerQueue::kCommit, &hint);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(base::StatusCode::kOverloaded, st.code()) << st.ToString();
    EXPECT_EQ(want, hint);
  }
  EXPECT_EQ(8u, cluster.ShedCount(lbc::Cluster::ServerQueue::kCommit));

  // Draining the queue resets the hint ladder.
  cluster.Finish(lbc::Cluster::ServerQueue::kCommit);
  EXPECT_EQ(0u, cluster.Inflight(lbc::Cluster::ServerQueue::kCommit));
  ASSERT_TRUE(cluster.Admit(lbc::Cluster::ServerQueue::kCommit).ok());
  uint64_t hint = 0;
  ASSERT_FALSE(cluster.Admit(lbc::Cluster::ServerQueue::kCommit, &hint).ok());
  EXPECT_EQ(1u, hint);
  cluster.Finish(lbc::Cluster::ServerQueue::kCommit);

  // The fetch queue is independent and unlimited unless configured.
  ASSERT_TRUE(cluster.Admit(lbc::Cluster::ServerQueue::kFetch).ok());
  cluster.Finish(lbc::Cluster::ServerQueue::kFetch);
  EXPECT_EQ(0u, cluster.ShedCount(lbc::Cluster::ServerQueue::kFetch));
}

TEST(Admission, ShedCommitLeavesTransactionOpenAndBackoffRecovers) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kAdmLock, kAdmRegion, /*manager=*/1);
  cluster.SetAdmissionLimit(lbc::Cluster::ServerQueue::kCommit, 1);

  lbc::ClientOptions options;
  options.overload_retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 2;
  auto a = std::move(*lbc::Client::Create(&cluster, 1, options));
  ASSERT_TRUE(a->MapRegion(kAdmRegion, 8192).ok());

  const uint64_t shed_before = CounterValue("admission.shed");

  // Saturate the commit queue from the outside, then try to commit through.
  ASSERT_TRUE(cluster.Admit(lbc::Cluster::ServerQueue::kCommit).ok());
  lbc::Transaction txn = a->Begin();
  ASSERT_TRUE(txn.Acquire(kAdmLock).ok());
  ASSERT_TRUE(txn.SetRange(kAdmRegion, 0, 5).ok());
  std::memcpy(a->GetRegion(kAdmRegion)->data(), "quota", 5);
  base::Status st = txn.Commit();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(base::StatusCode::kOverloaded, st.code()) << st.ToString();

  // 1 initial admit + overload_retries re-admits, all shed.
  EXPECT_EQ(3u, cluster.ShedCount(lbc::Cluster::ServerQueue::kCommit));
  EXPECT_EQ(2u, a->stats().overload_retries);
  EXPECT_GE(CounterValue("admission.shed") - shed_before, 3u);

  // The shed happened before any commit state changed: the transaction is
  // still open, so once the queue drains the same handle commits clean.
  cluster.Finish(lbc::Cluster::ServerQueue::kCommit);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(0u, cluster.Inflight(lbc::Cluster::ServerQueue::kCommit));
  EXPECT_EQ(0, std::memcmp(a->GetRegion(kAdmRegion)->data(), "quota", 5));
}

TEST(Admission, ShedMapRegionRecoversOnceQueueDrains) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kAdmLock, kAdmRegion, /*manager=*/1);
  cluster.SetAdmissionLimit(lbc::Cluster::ServerQueue::kFetch, 1);

  lbc::ClientOptions options;
  options.overload_retries = 1;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 1;
  auto a = std::move(*lbc::Client::Create(&cluster, 1, options));

  ASSERT_TRUE(cluster.Admit(lbc::Cluster::ServerQueue::kFetch).ok());
  base::Result<rvm::Region*> mapped = a->MapRegion(kAdmRegion, 8192);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(base::StatusCode::kOverloaded, mapped.status().code())
      << mapped.status().ToString();

  cluster.Finish(lbc::Cluster::ServerQueue::kFetch);
  ASSERT_TRUE(a->MapRegion(kAdmRegion, 8192).ok());
  EXPECT_EQ(0u, cluster.Inflight(lbc::Cluster::ServerQueue::kFetch));
}

// --- gray liveness ----------------------------------------------------------

TEST(GrayLiveness, SlowPeerIsSuspectNotDeadUntilStretchedDeadline) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.SetGraySlackFactor(8);
  const auto lease = std::chrono::milliseconds(100);

  // Node 1 beats slowly but steadily: the EWMA of its inter-beat gap learns
  // ~250 ms, so its stretched deadline is ~2 s — far past the 100 ms lease.
  cluster.NoteAlive(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  cluster.NoteAlive(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  cluster.NoteAlive(1);

  // Past the lease, inside the stretched deadline: suspect-slow, withheld
  // from eviction — its token must not be reclaimed while it can commit.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(cluster.LeaseExpired(lease).empty());
  std::vector<rvm::NodeId> suspect = cluster.SuspectSlow();
  ASSERT_EQ(1u, suspect.size());
  EXPECT_EQ(1u, suspect[0]);

  // Another beat clears the suspicion (an averted eviction)...
  const uint64_t averted_before = CounterValue("gray.evictions_averted");
  cluster.NoteAlive(1);
  EXPECT_TRUE(cluster.LeaseExpired(lease).empty());
  EXPECT_TRUE(cluster.SuspectSlow().empty());
  EXPECT_EQ(averted_before + 1, CounterValue("gray.evictions_averted"));

  // ... but true silence outlives any stretch: the node is reported dead
  // once even slack_factor × EWMA is exhausted.
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  std::vector<rvm::NodeId> expired = cluster.LeaseExpired(lease);
  ASSERT_EQ(1u, expired.size());
  EXPECT_EQ(1u, expired[0]);
}

TEST(GrayLiveness, NominalRateNodeStillExpiresExactlyAtLease) {
  store::MemStore store;
  lbc::Cluster cluster(&store);

  // Fast beats: EWMA ≪ lease, so the stretched deadline IS the lease and
  // the gray layer changes nothing for ordinary failures.
  for (int i = 0; i < 5; ++i) {
    cluster.NoteAlive(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::vector<rvm::NodeId> expired = cluster.LeaseExpired(std::chrono::milliseconds(100));
  ASSERT_EQ(1u, expired.size());
  EXPECT_EQ(2u, expired[0]);
  EXPECT_TRUE(cluster.SuspectSlow().empty());
}

TEST(GrayLiveness, BeatFromDeclaredDeadNodeCountsAsFalseEviction) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.NoteAlive(3);
  cluster.DeclareDead(3);

  const uint64_t false_before = CounterValue("gray.false_evictions");
  cluster.NoteAlive(3);  // the "dead" node was merely slow
  EXPECT_EQ(false_before + 1, CounterValue("gray.false_evictions"));
  // The late beat does not resurrect it in the lease registry.
  EXPECT_TRUE(cluster.LeaseExpired(std::chrono::milliseconds(0)).empty());
}

TEST(GrayLiveness, AcquireDeadlineFailsFastBehindSlowHolderThenSucceeds) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kAdmLock, kAdmRegion, /*manager=*/1);

  auto a = std::move(*lbc::Client::Create(&cluster, 1, lbc::ClientOptions{}));
  lbc::ClientOptions b_options;
  b_options.op_deadline_ms = 100;
  auto b = std::move(*lbc::Client::Create(&cluster, 2, b_options));
  ASSERT_TRUE(a->MapRegion(kAdmRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kAdmRegion, 8192).ok());

  // A holds the lock in an open transaction — a slow peer from B's side.
  lbc::Transaction slow = a->Begin();
  ASSERT_TRUE(slow.Acquire(kAdmLock).ok());
  ASSERT_TRUE(slow.SetRange(kAdmRegion, 0, 4).ok());
  std::memcpy(a->GetRegion(kAdmRegion)->data(), "slow", 4);

  lbc::Transaction txn = b->Begin();
  base::Status st = txn.Acquire(kAdmLock);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(base::StatusCode::kDeadlineExceeded, st.code()) << st.ToString();
  EXPECT_EQ(1u, b->stats().deadline_misses);

  // The slow holder finishes; the same transaction's retried acquire now
  // lands within budget and B sees A's committed bytes.
  ASSERT_TRUE(slow.Commit().ok());
  ASSERT_TRUE(txn.Acquire(kAdmLock).ok());
  EXPECT_EQ(0, std::memcmp(b->GetRegion(kAdmRegion)->data(), "slow", 4));
  ASSERT_TRUE(txn.Commit().ok());
}

}  // namespace
