// Rng and clock behaviour.
#include <gtest/gtest.h>

#include <set>

#include "src/base/clock.h"
#include "src/base/rng.h"

namespace {

TEST(Rng, DeterministicForSeed) {
  base::Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  base::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(0, same);
}

TEST(Rng, UniformInBounds) {
  base::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  base::Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(7u, seen.size());  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  base::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ManualClock, AdvancesOnlyWhenAsked) {
  base::ManualClock clock(100);
  EXPECT_EQ(100u, clock.NowNanos());
  clock.AdvanceNanos(50);
  EXPECT_EQ(150u, clock.NowNanos());
  clock.AdvanceMicros(2);
  EXPECT_EQ(2150u, clock.NowNanos());
}

TEST(SteadyClock, MonotonicNonDecreasing) {
  base::Clock* clock = base::SteadyClock::Instance();
  uint64_t a = clock->NowNanos();
  uint64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

TEST(Stopwatch, MeasuresElapsed) {
  base::Stopwatch sw;
  uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += static_cast<uint64_t>(i);
    asm volatile("" : "+r"(sink));
  }
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), sw.ElapsedSeconds() * 1e6 * 0.5);
}

}  // namespace
