// The kLazyServer propagation policy (§2.2's second lazy variant): commits
// publish records to the server's in-memory cache; acquirers fetch what
// they are missing; the cache trims as mappers report progress.
#include <gtest/gtest.h>

#include <cstring>

#include "src/lbc/client.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

struct ServerFetchFixture {
  explicit ServerFetchFixture(int n_clients) {
    cluster = std::make_unique<lbc::Cluster>(&store);
    cluster->DefineLock(kLock, kRegion, 1);
    lbc::ClientOptions opts;
    opts.policy = lbc::PropagationPolicy::kLazyServer;
    for (int i = 0; i < n_clients; ++i) {
      clients.push_back(std::move(*lbc::Client::Create(cluster.get(), 1 + i, opts)));
      EXPECT_TRUE(clients.back()->MapRegion(kRegion, 8192).ok());
    }
  }
  lbc::Client* operator[](int i) { return clients[i].get(); }

  store::MemStore store;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<std::unique_ptr<lbc::Client>> clients;
};

void Bump(lbc::Client* c) {
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  uint64_t v;
  std::memcpy(&v, c->GetRegion(kRegion)->data(), 8);
  ++v;
  ASSERT_TRUE(txn.SetRange(kRegion, 0, 8).ok());
  std::memcpy(c->GetRegion(kRegion)->data(), &v, 8);
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(ServerFetch, CommitsPublishToServerCache) {
  ServerFetchFixture fx(2);
  Bump(fx[0]);
  Bump(fx[0]);
  EXPECT_EQ(0u, fx[0]->stats().updates_sent);  // nothing broadcast
  EXPECT_GE(fx.cluster->CachedRecordCount(kLock), 2u);
}

TEST(ServerFetch, AcquirerFetchesMissingRecords) {
  ServerFetchFixture fx(2);
  for (int i = 0; i < 4; ++i) {
    Bump(fx[0]);
  }
  EXPECT_EQ(0u, fx[1]->AppliedSeq(kLock));  // stale until it acquires
  Bump(fx[1]);                              // fetches 1..4, then writes 5
  uint64_t v;
  std::memcpy(&v, fx[1]->GetRegion(kRegion)->data(), 8);
  EXPECT_EQ(5u, v);
  EXPECT_EQ(5u, fx[1]->AppliedSeq(kLock));
}

TEST(ServerFetch, PingPongConverges) {
  ServerFetchFixture fx(2);
  for (int round = 0; round < 10; ++round) {
    Bump(fx[round % 2]);
  }
  uint64_t v;
  std::memcpy(&v, fx[1]->GetRegion(kRegion)->data(), 8);
  EXPECT_EQ(10u, v);
}

TEST(ServerFetch, CacheTrimsAsPeersCatchUp) {
  ServerFetchFixture fx(2);
  for (int i = 0; i < 8; ++i) {
    Bump(fx[0]);
  }
  size_t before = fx.cluster->CachedRecordCount(kLock);
  EXPECT_GE(before, 7u);
  Bump(fx[1]);  // peer reports progress through seq 8 (and adds seq 9)
  Bump(fx[0]);  // writer's publish triggers a trim pass
  EXPECT_LE(fx.cluster->CachedRecordCount(kLock), 3u);
}

TEST(ServerFetch, ThreeNodesRotating) {
  ServerFetchFixture fx(3);
  for (int round = 0; round < 9; ++round) {
    Bump(fx[round % 3]);
  }
  for (int i = 0; i < 3; ++i) {
    // Each node's final acquire made it fully current at its last write.
    EXPECT_GE(fx[i]->AppliedSeq(kLock), static_cast<uint64_t>(7 + i)) << i;
  }
  uint64_t v;
  std::memcpy(&v, fx[2]->GetRegion(kRegion)->data(), 8);
  EXPECT_EQ(9u, v);
}

TEST(ServerFetch, SecondLockInTransactionRejected) {
  ServerFetchFixture fx(1);
  fx.cluster->DefineLock(11, kRegion, 1);
  lbc::Transaction txn = fx[0]->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  EXPECT_EQ(base::StatusCode::kFailedPrecondition, txn.Acquire(11).code());
  ASSERT_TRUE(txn.Abort().ok());
}

}  // namespace
