// Systematic crash-schedule exploration over a fixed multi-client workload.
//
// Three raw Rvm nodes share one store and commit nine kFlush transactions
// into two regions (disjoint per-node slices, one segment lock per region,
// driver-assigned sequence numbers), with a §3.5-style checkpoint — merge +
// replay + per-node TrimLogWithBaselines — wedged into the middle so the
// sweep also crashes inside log truncation's temp-write/rename/dir-sync
// dance. The explorer then crashes the workload before every mutating store
// operation (plus torn-tail variants of each write), reboots, recovers via
// ReplayLogsIntoDatabase, and checks the paper's invariant: the recovered
// database equals the state after a prefix of the committed order — either
// exactly the transactions whose commit returned, or those plus one
// in-flight commit whose log record happened to be complete on the platter.
// A second sweep crashes recovery itself and requires re-recovery to land
// byte-identical to a clean single pass (replay idempotence).
//
// Budget/seed are env-tunable: LBC_CRASH_BUDGET (0 = exhaustive, the
// default — the workload is small enough to sweep fully) and
// LBC_CRASH_SEED select the sampled subset when a budget is set.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/rvm/crash_explorer.h"
#include "src/rvm/recovery.h"
#include "src/rvm/rvm.h"
#include "src/rvm/types.h"
#include "src/store/durable_store.h"

namespace {

class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};

const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

// --- the fixed workload -----------------------------------------------------

constexpr uint64_t kSliceSize = 16;
constexpr uint64_t kRegionSize = 3 * kSliceSize;  // one slice per node
constexpr rvm::LockId kLockR1 = 101;
constexpr rvm::LockId kLockR2 = 202;
constexpr int kCheckpointAfter = 5;  // txns committed before the mid-run trim

struct Step {
  rvm::NodeId node;
  rvm::RegionId region;
  uint8_t value;
};

// Serial driver order; each step fills the writer's own slice of the region.
constexpr Step kSteps[] = {
    {1, 1, 0xA1}, {2, 1, 0xB2}, {3, 2, 0xC3}, {1, 2, 0xD4}, {2, 2, 0xE5},
    {3, 1, 0xF6}, {1, 1, 0x17}, {2, 2, 0x28}, {3, 2, 0x39},
};
constexpr int kTxns = static_cast<int>(sizeof(kSteps) / sizeof(kSteps[0]));

rvm::LockId LockFor(rvm::RegionId region) { return region == 1 ? kLockR1 : kLockR2; }

using RegionBytes = std::vector<uint8_t>;
using ClusterState = std::array<RegionBytes, 2>;  // regions 1 and 2

// shadow[k] = both regions' bytes after the first k committed transactions.
std::vector<ClusterState> BuildShadow() {
  std::vector<ClusterState> shadow;
  ClusterState state = {RegionBytes(kRegionSize, 0), RegionBytes(kRegionSize, 0)};
  shadow.push_back(state);
  for (const Step& step : kSteps) {
    std::memset(state[step.region - 1].data() + (step.node - 1) * kSliceSize,
                step.value, kSliceSize);
    shadow.push_back(state);
  }
  return shadow;
}

// Harness shared by both sweeps: the workload/recover/verify closures plus
// the commit bookkeeping the verifier reads.
class ExplorerHarness {
 public:
  explicit ExplorerHarness(uint64_t budget, uint64_t seed) : shadow_(BuildShadow()) {
    options_.budget = budget;
    options_.seed = seed;
  }

  rvm::CrashExplorer MakeExplorer() {
    return rvm::CrashExplorer(
        options_, [this](store::DurableStore* s) { return RunWorkload(s); },
        [this](store::DurableStore* s) { return Recover(s); },
        [this](store::DurableStore* s) { return Verify(s); });
  }

 private:
  // Deterministic by construction: no clocks, no randomness, fixed step
  // table — every run issues the identical store-operation sequence up to
  // the injected crash.
  base::Status RunWorkload(store::DurableStore* s) {
    commits_ = 0;
    std::map<rvm::NodeId, std::unique_ptr<rvm::Rvm>> nodes;
    for (rvm::NodeId n : {rvm::NodeId{1}, rvm::NodeId{2}, rvm::NodeId{3}}) {
      ASSIGN_OR_RETURN(auto node, rvm::Rvm::Open(s, n, rvm::RvmOptions{}));
      RETURN_IF_ERROR(node->MapRegion(1, kRegionSize).status());
      RETURN_IF_ERROR(node->MapRegion(2, kRegionSize).status());
      nodes[n] = std::move(node);
    }
    std::map<rvm::LockId, uint64_t> seq;
    for (int i = 0; i < kTxns; ++i) {
      if (i == kCheckpointAfter) {
        RETURN_IF_ERROR(Checkpoint(s, nodes, seq));
      }
      const Step& step = kSteps[i];
      rvm::Rvm* node = nodes[step.node].get();
      rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
      uint64_t off = (step.node - 1) * kSliceSize;
      RETURN_IF_ERROR(node->SetRange(txn, step.region, off, kSliceSize));
      std::memset(node->GetRegion(step.region)->data() + off, step.value, kSliceSize);
      rvm::LockId lock = LockFor(step.region);
      RETURN_IF_ERROR(node->SetLockId(txn, lock, seq[lock] + 1));
      RETURN_IF_ERROR(node->EndTransaction(txn, rvm::CommitMode::kFlush));
      // Only counted once the kFlush commit returned: those transactions are
      // guaranteed durable, so the verifier may demand at least that prefix.
      ++seq[lock];
      ++commits_;
    }
    return base::OkStatus();
  }

  // Mid-run §3.5 checkpoint: replay everyone's log into the database files,
  // then trim each log against the replayed baselines. Lock kLockR2's
  // baseline is held one behind so the trim's keep-the-tail path runs too
  // (replay is idempotent, so the kept record is harmless).
  base::Status Checkpoint(store::DurableStore* s,
                          std::map<rvm::NodeId, std::unique_ptr<rvm::Rvm>>& nodes,
                          const std::map<rvm::LockId, uint64_t>& seq) {
    std::vector<std::string> logs;
    for (const auto& [n, node] : nodes) {
      logs.push_back(rvm::LogFileName(n));
    }
    RETURN_IF_ERROR(rvm::ReplayLogsIntoDatabase(s, logs));
    std::map<rvm::LockId, uint64_t> baselines;
    for (const auto& [lock, sq] : seq) {
      baselines[lock] = lock == kLockR2 && sq > 0 ? sq - 1 : sq;
    }
    for (auto& [n, node] : nodes) {
      RETURN_IF_ERROR(node->TrimLogWithBaselines(baselines));
    }
    return base::OkStatus();
  }

  base::Status Recover(store::DurableStore* s) {
    // A crash before a node's first log sync leaves no durable log file;
    // ReplayLogsIntoDatabase treats the missing log as empty.
    return rvm::ReplayLogsIntoDatabase(
        s, {rvm::LogFileName(1), rvm::LogFileName(2), rvm::LogFileName(3)});
  }

  static base::Result<RegionBytes> ReadRegion(store::DurableStore* s, rvm::RegionId id) {
    RegionBytes out(kRegionSize, 0);  // missing file / short file reads as zeros
    ASSIGN_OR_RETURN(bool exists, s->Exists(rvm::RegionFileName(id)));
    if (!exists) {
      return out;
    }
    ASSIGN_OR_RETURN(auto file, s->Open(rvm::RegionFileName(id), /*create=*/false));
    ASSIGN_OR_RETURN(uint64_t size, file->Size());
    if (size > 0) {
      RETURN_IF_ERROR(
          file->ReadExact(0, out.data(), std::min<uint64_t>(size, kRegionSize)));
    }
    return out;
  }

  // Committed-prefix invariant: the recovered database must equal the state
  // after `commits_` transactions, or after `commits_ + 1` — the in-flight
  // commit whose EndTransaction never returned may still have landed a
  // complete log record (e.g. a whole-write torn variant). Anything else —
  // a lost committed transaction, a torn partial frame surviving CRC, an
  // out-of-order prefix — fails.
  base::Status Verify(store::DurableStore* s) {
    ASSIGN_OR_RETURN(RegionBytes r1, ReadRegion(s, 1));
    ASSIGN_OR_RETURN(RegionBytes r2, ReadRegion(s, 2));
    auto matches = [&](int k) {
      return r1 == shadow_[k][0] && r2 == shadow_[k][1];
    };
    if (matches(commits_)) {
      return base::OkStatus();
    }
    if (commits_ + 1 < static_cast<int>(shadow_.size()) && matches(commits_ + 1)) {
      return base::OkStatus();
    }
    return base::Internal("recovered database matches neither the " +
                          std::to_string(commits_) + "-commit prefix nor the " +
                          std::to_string(commits_ + 1) + "-commit prefix");
  }

  rvm::CrashExplorerOptions options_;
  std::vector<ClusterState> shadow_;
  int commits_ = 0;  // kFlush commits that returned in the current run
};

// --- the sweeps -------------------------------------------------------------

TEST(CrashExplorer, EveryWorkloadCrashRecoversToCommittedPrefix) {
  uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  ExplorerHarness harness(budget, seed);
  rvm::CrashExplorer explorer = harness.MakeExplorer();

  obs::Counter* torn_detected =
      obs::MetricsRegistry::Global()->GetCounter("rvm.torn_tails_detected");
  uint64_t torn_before = torn_detected->value();

  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreWorkloadCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::printf("workload sweep: %llu mutating ops, %llu schedules (%llu torn), "
              "budget=%llu seed=%#llx\n",
              static_cast<unsigned long long>(report.workload_ops),
              static_cast<unsigned long long>(report.schedules_run),
              static_cast<unsigned long long>(report.torn_schedules_run),
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(seed));

  // The workload really spans the whole stack: per-node logs, kFlush
  // commits, and the mid-run checkpoint's replay + truncation swap.
  EXPECT_GT(report.workload_ops, 30u);
  EXPECT_GT(report.schedules_run, 0u);
  EXPECT_GT(report.torn_schedules_run, 0u);
  if (budget == 0) {
    // Exhaustive mode: one clean schedule per mutating op, plus the torn
    // variants — every operation index was crashed at least once.
    EXPECT_GE(report.schedules_run, report.workload_ops);
  }
  // Torn tails were not just injected but *detected*: some schedule left a
  // partial frame that recovery's CRC scan had to stop at.
  EXPECT_GT(torn_detected->value(), torn_before);
}

TEST(CrashExplorer, CrashDuringRecoveryIsIdempotent) {
  uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  ExplorerHarness harness(budget, seed);
  rvm::CrashExplorer explorer = harness.MakeExplorer();

  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreRecoveryCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::printf("recovery sweep: %llu mutating ops, %llu nested schedules\n",
              static_cast<unsigned long long>(report.recovery_ops),
              static_cast<unsigned long long>(report.nested_schedules_run));
  EXPECT_GT(report.recovery_ops, 0u);
  EXPECT_GT(report.nested_schedules_run, 0u);
  if (budget == 0) {
    EXPECT_GE(report.nested_schedules_run, report.recovery_ops);
  }
}

// --- power cut mid-batch (group commit) -------------------------------------
//
// Four kFlush transactions are parked on a held commit pipeline and released
// as ONE vectored append plus ONE sync; the sweep crashes before each of
// those two store ops and additionally tears the batch write at frame
// boundaries (and just past them). The invariant is batch atomicity at the
// LOG-FRAME level, not the transaction level: recovery must land on the
// state after some per-transaction prefix of the batch's enqueue order —
// and the torn variants must actually produce the interior prefixes.

constexpr rvm::RegionId kBatchRegion = 7;
constexpr rvm::LockId kBatchLock = 707;
constexpr int kBatchTxns = 4;
constexpr uint64_t kBatchSlice = 16;
constexpr uint64_t kBatchRegionSize = kBatchTxns * kBatchSlice;
constexpr uint8_t kBatchValues[kBatchTxns] = {0x5A, 0x6B, 0x7C, 0x8D};

// One framed record for one kBatchSlice-byte transaction with one lock
// record, measured rather than hard-coded so the torn offsets track the
// wire format.
uint64_t MeasureBatchFrameBytes() {
  store::MemStore mem;
  auto node = std::move(*rvm::Rvm::Open(&mem, 1, rvm::RvmOptions{}));
  EXPECT_TRUE(node->MapRegion(kBatchRegion, kBatchRegionSize).ok());
  rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
  EXPECT_TRUE(node->SetRange(txn, kBatchRegion, 0, kBatchSlice).ok());
  EXPECT_TRUE(node->SetLockId(txn, kBatchLock, 1).ok());
  EXPECT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  return node->log_bytes();
}

// batch_shadow[k] = region bytes after the first k transactions of the batch.
std::vector<RegionBytes> BuildBatchShadow() {
  std::vector<RegionBytes> shadow;
  RegionBytes state(kBatchRegionSize, 0);
  shadow.push_back(state);
  for (int i = 0; i < kBatchTxns; ++i) {
    std::memset(state.data() + i * kBatchSlice, kBatchValues[i], kBatchSlice);
    shadow.push_back(state);
  }
  return shadow;
}

class BatchHarness {
 public:
  BatchHarness(uint64_t budget, uint64_t seed, std::vector<size_t> torn_variants)
      : shadow_(BuildBatchShadow()) {
    options_.budget = budget;
    options_.seed = seed;
    options_.torn_variants = std::move(torn_variants);
  }

  rvm::CrashExplorer MakeExplorer() {
    return rvm::CrashExplorer(
        options_, [this](store::DurableStore* s) { return RunWorkload(s); },
        [this](store::DurableStore* s) { return Recover(s); },
        [this](store::DurableStore* s) { return Verify(s); });
  }

  // Batch prefix lengths the verifier accepted, across all schedules.
  const std::set<int>& prefixes_seen() const { return prefixes_seen_; }

 private:
  base::Status RunWorkload(store::DurableStore* s) {
    commits_ = 0;
    ASSIGN_OR_RETURN(auto node, rvm::Rvm::Open(s, 1, rvm::RvmOptions{}));
    RETURN_IF_ERROR(node->MapRegion(kBatchRegion, kBatchRegionSize).status());

    // Park the pipeline and enqueue the four committers ONE AT A TIME (each
    // start waits for the previous record to be parked), so the batch's
    // membership and commit_seq order are fixed on every replay. The
    // committer threads issue no store operations themselves — encoding
    // happens in memory — keeping the mutating-op sequence deterministic.
    node->HoldCommitPipeline();
    std::vector<std::thread> committers;
    std::vector<base::Status> statuses(kBatchTxns);
    for (int i = 0; i < kBatchTxns; ++i) {
      committers.emplace_back([&node, &statuses, i] {
        rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
        base::Status st =
            node->SetRange(txn, kBatchRegion, i * kBatchSlice, kBatchSlice);
        if (st.ok()) {
          std::memset(node->GetRegion(kBatchRegion)->data() + i * kBatchSlice,
                      kBatchValues[i], kBatchSlice);
          st = node->SetLockId(txn, kBatchLock, static_cast<uint64_t>(i) + 1);
        }
        if (st.ok()) {
          st = node->EndTransaction(txn, rvm::CommitMode::kFlush);
        }
        statuses[i] = st;
      });
      while (node->PendingCommitCount() < static_cast<size_t>(i) + 1) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }

    // The whole cohort goes to the store as one append + one sync; these are
    // the only mutating ops of the commit phase, so the sweep's crash points
    // are exactly "power cut mid-batch".
    base::Status release = node->ReleaseCommitPipeline();
    for (auto& t : committers) {
      t.join();
    }
    for (int i = 0; i < kBatchTxns; ++i) {
      if (statuses[i].ok()) {
        ++commits_;
      } else if (release.ok()) {
        release = statuses[i];
      }
    }
    return release;
  }

  base::Status Recover(store::DurableStore* s) {
    return rvm::ReplayLogsIntoDatabase(s, {rvm::LogFileName(1)});
  }

  base::Status Verify(store::DurableStore* s) {
    RegionBytes got(kBatchRegionSize, 0);
    ASSIGN_OR_RETURN(bool exists, s->Exists(rvm::RegionFileName(kBatchRegion)));
    if (exists) {
      ASSIGN_OR_RETURN(auto file, s->Open(rvm::RegionFileName(kBatchRegion),
                                          /*create=*/false));
      ASSIGN_OR_RETURN(uint64_t size, file->Size());
      if (size > 0) {
        RETURN_IF_ERROR(file->ReadExact(0, got.data(),
                                        std::min<uint64_t>(size, kBatchRegionSize)));
      }
    }
    // Frame-level atomicity: the recovered region must equal the state after
    // some prefix of the batch — at least every transaction whose commit
    // returned OK, at most the whole batch. A torn write that cut frame k+1
    // must surface exactly the k-transaction state, never a blend.
    for (int k = commits_; k <= kBatchTxns; ++k) {
      if (got == shadow_[k]) {
        prefixes_seen_.insert(k);
        return base::OkStatus();
      }
    }
    return base::Internal(
        "recovered region matches no batch prefix in [" +
        std::to_string(commits_) + ", " + std::to_string(kBatchTxns) + "]");
  }

  rvm::CrashExplorerOptions options_;
  std::vector<RegionBytes> shadow_;
  std::set<int> prefixes_seen_;
  int commits_ = 0;  // EndTransaction calls that returned OK this run
};

TEST(CrashExplorer, PowerCutMidBatchRecoversPerTransactionPrefix) {
  const uint64_t frame = MeasureBatchFrameBytes();
  ASSERT_GT(frame, kBatchSlice);
  // Tear the batch write at and around every frame boundary: mid-frame
  // (partial frame discarded), exact boundaries (clean interior prefixes),
  // and the full write.
  std::vector<size_t> torn = {1,
                              static_cast<size_t>(frame - 1),
                              static_cast<size_t>(frame),
                              static_cast<size_t>(frame + 1),
                              static_cast<size_t>(2 * frame),
                              static_cast<size_t>(3 * frame),
                              static_cast<size_t>(3 * frame + 5),
                              SIZE_MAX};
  uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  BatchHarness harness(budget, seed, torn);
  rvm::CrashExplorer explorer = harness.MakeExplorer();

  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreWorkloadCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::printf("batch sweep: %llu mutating ops, %llu schedules (%llu torn)\n",
              static_cast<unsigned long long>(report.workload_ops),
              static_cast<unsigned long long>(report.schedules_run),
              static_cast<unsigned long long>(report.torn_schedules_run));
  EXPECT_GT(report.schedules_run, 0u);
  EXPECT_GT(report.torn_schedules_run, 0u);
  if (budget == 0) {
    // The torn variants really cut the batch into per-transaction prefixes:
    // every interior length showed up, not just all-or-nothing.
    for (int k = 0; k <= kBatchTxns; ++k) {
      EXPECT_TRUE(harness.prefixes_seen().count(k))
          << "no schedule recovered to the " << k << "-transaction prefix";
    }
  }
}

// A tight budget still runs — sampled, boundaries pinned — so CI can bound
// sweep time on bigger workloads without losing the first/last-op cases.
TEST(CrashExplorer, SampledSweepHonorsBudget) {
  ExplorerHarness harness(/*budget=*/8, /*seed=*/7);
  rvm::CrashExplorer explorer = harness.MakeExplorer();
  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreWorkloadCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_LE(report.schedules_run, 8u);
  EXPECT_GT(report.schedules_run, 0u);
}

}  // namespace
