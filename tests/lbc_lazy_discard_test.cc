// The §2.2 record-discard problem under lazy propagation: retained records
// must be held exactly until the most out-of-date peer has applied them,
// then dropped.
#include <gtest/gtest.h>

#include <cstring>

#include "src/lbc/client.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

struct LazyFixture {
  explicit LazyFixture(int n_clients) {
    cluster = std::make_unique<lbc::Cluster>(&store);
    cluster->DefineLock(kLock, kRegion, 1);
    lbc::ClientOptions opts;
    opts.policy = lbc::PropagationPolicy::kLazy;
    for (int i = 0; i < n_clients; ++i) {
      clients.push_back(std::move(*lbc::Client::Create(cluster.get(), 1 + i, opts)));
      EXPECT_TRUE(clients.back()->MapRegion(kRegion, 8192).ok());
    }
  }
  lbc::Client* operator[](int i) { return clients[i].get(); }

  store::MemStore store;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<std::unique_ptr<lbc::Client>> clients;
};

void Bump(lbc::Client* c) {
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  uint64_t v;
  std::memcpy(&v, c->GetRegion(kRegion)->data(), 8);
  ++v;
  ASSERT_TRUE(txn.SetRange(kRegion, 0, 8).ok());
  std::memcpy(c->GetRegion(kRegion)->data(), &v, 8);
  ASSERT_TRUE(txn.Commit().ok());
}

void AcquireRelease(lbc::Client* c) {
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(LazyDiscard, RecordsAccumulateWhilePeersLag) {
  LazyFixture fx(3);
  for (int i = 0; i < 5; ++i) {
    Bump(fx[0]);
  }
  // Neither peer has acquired: all five records must still be retained.
  EXPECT_EQ(5u, fx[0]->RetainedCount(kLock));
}

TEST(LazyDiscard, RecordsDropOnceEveryPeerCaughtUp) {
  LazyFixture fx(3);
  for (int i = 0; i < 5; ++i) {
    Bump(fx[0]);
  }
  // Peer 2 catches up: records still needed by peer 3.
  AcquireRelease(fx[1]);
  Bump(fx[0]);
  EXPECT_GE(fx[0]->RetainedCount(kLock), 5u);

  // Peer 3 catches up too: the writer's next retention pass can discard
  // everything both peers have applied.
  AcquireRelease(fx[2]);
  Bump(fx[0]);
  EXPECT_LE(fx[0]->RetainedCount(kLock), 2u);
  // And the data is correct everywhere after one more round.
  AcquireRelease(fx[1]);
  uint64_t v;
  std::memcpy(&v, fx[1]->GetRegion(kRegion)->data(), 8);
  EXPECT_EQ(7u, v);
}

TEST(LazyDiscard, TwoNodePingPongRetainsBoundedRecords) {
  LazyFixture fx(2);
  for (int round = 0; round < 20; ++round) {
    Bump(fx[round % 2]);
  }
  // Every acquisition tells the directory the acquirer's position; the
  // retained backlog on each node must stay small, not grow with rounds.
  EXPECT_LE(fx[0]->RetainedCount(kLock), 3u);
  EXPECT_LE(fx[1]->RetainedCount(kLock), 3u);
}

TEST(LazyDiscard, UnmappedPeerDoesNotPinRecords) {
  LazyFixture fx(3);
  // Peer 3 leaves; only peer 2's position matters afterwards.
  ASSERT_TRUE(fx[2]->UnmapRegion(kRegion).ok());
  for (int i = 0; i < 5; ++i) {
    Bump(fx[0]);
  }
  AcquireRelease(fx[1]);
  Bump(fx[0]);
  EXPECT_LE(fx[0]->RetainedCount(kLock), 2u);
}

}  // namespace
