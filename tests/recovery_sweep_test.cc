// Crash-schedule sweeps for INCREMENTAL recovery: the crash_explorer_test
// workload family, recovered through LogIndex + IncrementalRecovery instead
// of an eager ReplayLogsIntoDatabase.
//
//   1. Workload sweep — power cut before every mutating op of a three-node
//      workload (with a mid-run checkpoint/trim), then an incremental boot:
//      index build, one region materialized on demand, the rest drained in
//      the background order. The drained database must land on a committed
//      prefix, and every page must pass sidecar verification.
//   2. Recovery sweep — power cut before every mutating op OF THE
//      INCREMENTAL RECOVERY ITSELF (page replays, sidecar intent writes,
//      syncs), reboot, then the serving-window probe: a fresh index serves
//      both regions on demand, asserting the committed image or failing
//      loudly — never an unreplayed byte. Re-recovery must be byte-identical
//      to a clean single pass (incremental replay is idempotent).
//   3. Index builds are read-only: zero mutating ops, so a cut during one
//      degrades to a cut at its start.
//   4. Composition with bit rot: a lazily discovered rotten pre-image fails
//      materialization with DATA_LOSS and is NOT replayed over; healing the
//      page lets the same materialization succeed.
//
// Budget/seed are env-tunable like crash_explorer_test: LBC_CRASH_BUDGET
// (0 = exhaustive) and LBC_CRASH_SEED.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/obs/export.h"
#include "src/rvm/crash_explorer.h"
#include "src/rvm/log_index.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/recovery.h"
#include "src/rvm/replay_on_demand.h"
#include "src/rvm/rvm.h"
#include "src/rvm/types.h"
#include "src/store/corrupting_store.h"
#include "src/store/crash_point_store.h"
#include "src/store/durable_store.h"
#include "src/store/mem_store.h"

namespace {

class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};
const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

// --- the fixed workload (crash_explorer_test's shape) -----------------------

constexpr uint64_t kSliceSize = 16;
constexpr uint64_t kRegionSize = 3 * kSliceSize;
constexpr rvm::LockId kLockR1 = 101;
constexpr rvm::LockId kLockR2 = 202;
constexpr int kCheckpointAfter = 5;

struct Step {
  rvm::NodeId node;
  rvm::RegionId region;
  uint8_t value;
};

constexpr Step kSteps[] = {
    {1, 1, 0xA1}, {2, 1, 0xB2}, {3, 2, 0xC3}, {1, 2, 0xD4}, {2, 2, 0xE5},
    {3, 1, 0xF6}, {1, 1, 0x17}, {2, 2, 0x28}, {3, 2, 0x39},
};
constexpr int kTxns = static_cast<int>(sizeof(kSteps) / sizeof(kSteps[0]));

rvm::LockId LockFor(rvm::RegionId region) { return region == 1 ? kLockR1 : kLockR2; }

std::vector<std::string> AllLogs() {
  return {rvm::LogFileName(1), rvm::LogFileName(2), rvm::LogFileName(3)};
}

using RegionBytes = std::vector<uint8_t>;
using ClusterState = std::array<RegionBytes, 2>;

std::vector<ClusterState> BuildShadow() {
  std::vector<ClusterState> shadow;
  ClusterState state = {RegionBytes(kRegionSize, 0), RegionBytes(kRegionSize, 0)};
  shadow.push_back(state);
  for (const Step& step : kSteps) {
    std::memset(state[step.region - 1].data() + (step.node - 1) * kSliceSize,
                step.value, kSliceSize);
    shadow.push_back(state);
  }
  return shadow;
}

base::Result<RegionBytes> ReadRegionFile(store::DurableStore* s, rvm::RegionId id) {
  RegionBytes out(kRegionSize, 0);  // missing / short file reads as zeros
  ASSIGN_OR_RETURN(bool exists, s->Exists(rvm::RegionFileName(id)));
  if (!exists) {
    return out;
  }
  ASSIGN_OR_RETURN(auto file, s->Open(rvm::RegionFileName(id), /*create=*/false));
  ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size > 0) {
    RETURN_IF_ERROR(
        file->ReadExact(0, out.data(), std::min<uint64_t>(size, kRegionSize)));
  }
  return out;
}

// Every page of `region`'s database file passes sidecar verification — the
// never-serve-a-corrupt-byte half of the serving invariant.
base::Status VerifyRegionPages(store::DurableStore* s, rvm::RegionId region) {
  ASSIGN_OR_RETURN(bool exists, s->Exists(rvm::RegionFileName(region)));
  if (!exists) {
    return base::OkStatus();
  }
  ASSIGN_OR_RETURN(auto file, s->Open(rvm::RegionFileName(region), /*create=*/false));
  ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::vector<uint8_t> image(size);
  if (size > 0) {
    RETURN_IF_ERROR(file->ReadExact(0, image.data(), image.size()));
  }
  ASSIGN_OR_RETURN(auto failed,
                   rvm::VerifyImagePages(s, region, image.data(), size, size));
  if (!failed.empty()) {
    return base::DataLoss("page " + std::to_string(failed[0]) +
                          " failed sidecar verification after drain");
  }
  return base::OkStatus();
}

// The incremental boot sequence, exactly as a server would run it: build
// the index (read-only), serve region 1 on first touch, drain the rest in
// deterministic background order. Single-threaded on purpose — the sweep
// needs an identical store-op sequence on every run.
base::Status RecoverIncrementally(store::DurableStore* s) {
  ASSIGN_OR_RETURN(rvm::LogIndex index, rvm::LogIndex::Build(s, AllLogs()));
  rvm::IncrementalRecovery recovery(s, std::move(index));
  RETURN_IF_ERROR(recovery.MaterializeRegion(1));  // first touch
  rvm::RegionId failed = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, recovery.DrainStep(&failed));
    if (!more) {
      break;
    }
  }
  return base::OkStatus();
}

// Harness mirroring crash_explorer_test's workload, with the incremental
// recovery procedure swapped in.
class IncrementalHarness {
 public:
  IncrementalHarness(uint64_t budget, uint64_t seed) : shadow_(BuildShadow()) {
    options_.budget = budget;
    options_.seed = seed;
  }

  rvm::CrashExplorer MakeExplorer(bool with_probe) {
    if (with_probe) {
      options_.recovery_probe = [this](store::DurableStore* s) { return Probe(s); };
    }
    return rvm::CrashExplorer(
        options_, [this](store::DurableStore* s) { return RunWorkload(s); },
        [](store::DurableStore* s) { return RecoverIncrementally(s); },
        [this](store::DurableStore* s) { return Verify(s); });
  }

 private:
  base::Status RunWorkload(store::DurableStore* s) {
    commits_ = 0;
    std::map<rvm::NodeId, std::unique_ptr<rvm::Rvm>> nodes;
    for (rvm::NodeId n : {rvm::NodeId{1}, rvm::NodeId{2}, rvm::NodeId{3}}) {
      ASSIGN_OR_RETURN(auto node, rvm::Rvm::Open(s, n, rvm::RvmOptions{}));
      RETURN_IF_ERROR(node->MapRegion(1, kRegionSize).status());
      RETURN_IF_ERROR(node->MapRegion(2, kRegionSize).status());
      nodes[n] = std::move(node);
    }
    std::map<rvm::LockId, uint64_t> seq;
    for (int i = 0; i < kTxns; ++i) {
      if (i == kCheckpointAfter) {
        RETURN_IF_ERROR(Checkpoint(s, nodes, seq));
      }
      const Step& step = kSteps[i];
      rvm::Rvm* node = nodes[step.node].get();
      rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
      uint64_t off = (step.node - 1) * kSliceSize;
      RETURN_IF_ERROR(node->SetRange(txn, step.region, off, kSliceSize));
      std::memset(node->GetRegion(step.region)->data() + off, step.value, kSliceSize);
      rvm::LockId lock = LockFor(step.region);
      RETURN_IF_ERROR(node->SetLockId(txn, lock, seq[lock] + 1));
      RETURN_IF_ERROR(node->EndTransaction(txn, rvm::CommitMode::kFlush));
      ++seq[lock];
      ++commits_;
    }
    return base::OkStatus();
  }

  // Mid-run checkpoint: the eager shared-core replay plus per-node trims,
  // so the sweep also cuts power inside truncation — and incremental boots
  // then start from a certified, partially-trimmed history.
  base::Status Checkpoint(store::DurableStore* s,
                          std::map<rvm::NodeId, std::unique_ptr<rvm::Rvm>>& nodes,
                          const std::map<rvm::LockId, uint64_t>& seq) {
    RETURN_IF_ERROR(rvm::ReplayLogsIntoDatabase(s, AllLogs()));
    std::map<rvm::LockId, uint64_t> baselines;
    for (const auto& [lock, sq] : seq) {
      baselines[lock] = lock == kLockR2 && sq > 0 ? sq - 1 : sq;
    }
    for (auto& [n, node] : nodes) {
      RETURN_IF_ERROR(node->TrimLogWithBaselines(baselines));
    }
    return base::OkStatus();
  }

  // The serving window: the machine just rebooted out of a crashed
  // recovery. A fresh index serves both regions on demand; whatever it
  // hands out must be the committed image (the workload ran to completion
  // in this sweep), and every materialized page must verify against the
  // sidecar. Materialization here is idempotent w.r.t. the second recovery
  // pass that follows.
  base::Status Probe(store::DurableStore* s) {
    ASSIGN_OR_RETURN(rvm::LogIndex index, rvm::LogIndex::Build(s, AllLogs()));
    rvm::IncrementalRecovery recovery(s, std::move(index));
    RETURN_IF_ERROR(recovery.MaterializeRegion(1));
    RETURN_IF_ERROR(recovery.MaterializeRegion(2));
    if (!recovery.Drained()) {
      return base::Internal("probe left indexed pages unmaterialized");
    }
    ASSIGN_OR_RETURN(RegionBytes r1, ReadRegionFile(s, 1));
    ASSIGN_OR_RETURN(RegionBytes r2, ReadRegionFile(s, 2));
    const ClusterState& committed = shadow_[kTxns];
    if (r1 != committed[0] || r2 != committed[1]) {
      return base::DataLoss("serving window exposed a non-committed image");
    }
    RETURN_IF_ERROR(VerifyRegionPages(s, 1));
    return VerifyRegionPages(s, 2);
  }

  // Committed-prefix invariant over the fully drained database, plus page
  // verification (the drain may not have certified a byte it cannot prove).
  base::Status Verify(store::DurableStore* s) {
    ASSIGN_OR_RETURN(RegionBytes r1, ReadRegionFile(s, 1));
    ASSIGN_OR_RETURN(RegionBytes r2, ReadRegionFile(s, 2));
    auto matches = [&](int k) {
      return r1 == shadow_[k][0] && r2 == shadow_[k][1];
    };
    if (!matches(commits_) &&
        !(commits_ + 1 < static_cast<int>(shadow_.size()) && matches(commits_ + 1))) {
      return base::Internal("drained database matches neither the " +
                            std::to_string(commits_) + "-commit prefix nor the " +
                            std::to_string(commits_ + 1) + "-commit prefix");
    }
    RETURN_IF_ERROR(VerifyRegionPages(s, 1));
    return VerifyRegionPages(s, 2);
  }

  rvm::CrashExplorerOptions options_;
  std::vector<ClusterState> shadow_;
  int commits_ = 0;
};

// --- the sweeps -------------------------------------------------------------

TEST(RecoverySweep, EveryWorkloadCrashDrainsToCommittedPrefix) {
  uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  IncrementalHarness harness(budget, seed);
  rvm::CrashExplorer explorer = harness.MakeExplorer(/*with_probe=*/false);

  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreWorkloadCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::printf("incremental workload sweep: %llu mutating ops, %llu schedules "
              "(%llu torn)\n",
              static_cast<unsigned long long>(report.workload_ops),
              static_cast<unsigned long long>(report.schedules_run),
              static_cast<unsigned long long>(report.torn_schedules_run));
  EXPECT_GT(report.workload_ops, 30u);
  EXPECT_GT(report.schedules_run, 0u);
  EXPECT_GT(report.torn_schedules_run, 0u);
  if (budget == 0) {
    EXPECT_GE(report.schedules_run, report.workload_ops);
  }
}

TEST(RecoverySweep, EveryRecoveryCrashServesAndReconvergesByteIdentical) {
  uint64_t budget = EnvU64("LBC_CRASH_BUDGET", 0);
  uint64_t seed = EnvU64("LBC_CRASH_SEED", 0x5eed);
  IncrementalHarness harness(budget, seed);
  rvm::CrashExplorer explorer = harness.MakeExplorer(/*with_probe=*/true);

  rvm::CrashExplorerReport report;
  base::Status status = explorer.ExploreRecoveryCrashes(&report);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::printf("incremental recovery sweep: %llu mutating ops, %llu nested "
              "schedules, %llu serving-window probes\n",
              static_cast<unsigned long long>(report.recovery_ops),
              static_cast<unsigned long long>(report.nested_schedules_run),
              static_cast<unsigned long long>(report.probes_run));
  EXPECT_GT(report.recovery_ops, 0u);
  EXPECT_GT(report.nested_schedules_run, 0u);
  EXPECT_EQ(report.nested_schedules_run, report.probes_run);
  if (budget == 0) {
    EXPECT_GE(report.nested_schedules_run, report.recovery_ops);
  }
}

// --- index builds are read-only ---------------------------------------------

TEST(RecoverySweep, IndexBuildContributesZeroMutatingOps) {
  store::MemStore mem;
  store::CrashPointStore cps(&mem);
  // A small committed history through the instrumented store.
  {
    auto node = std::move(*rvm::Rvm::Open(&cps, 1, rvm::RvmOptions{}));
    ASSERT_TRUE(node->MapRegion(1, kRegionSize).ok());
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, 1, 0, kSliceSize).ok());
    std::memset(node->GetRegion(1)->data(), 0x42, kSliceSize);
    ASSERT_TRUE(node->SetLockId(txn, kLockR1, 1).ok());
    ASSERT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  }
  cps.ResetOpCount();
  auto index = rvm::LogIndex::Build(&cps, {rvm::LogFileName(1)});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(1u, index->page_count());
  // Read-only: a power cut during the build is a cut at its start.
  EXPECT_EQ(0u, cps.op_count());
}

// --- composition with bit rot -----------------------------------------------

TEST(RecoverySweep, RottenPreImageFailsMaterializationAndIsNotReplayedOver) {
  store::MemStore mem;
  store::CorruptionInjectingStore store(&mem, 0xB17F11);

  // Certified base: one full-slice commit, eagerly replayed, log trimmed —
  // the database page and its sidecar entry are the only copy.
  {
    auto node = std::move(*rvm::Rvm::Open(&store, 1, rvm::RvmOptions{}));
    ASSERT_TRUE(node->MapRegion(1, kRegionSize).ok());
    rvm::TxnId txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, 1, 0, kRegionSize).ok());
    std::memset(node->GetRegion(1)->data(), 0x42, kRegionSize);
    ASSERT_TRUE(node->SetLockId(txn, kLockR1, 1).ok());
    ASSERT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
    ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, {rvm::LogFileName(1)}).ok());
    ASSERT_TRUE(node->TrimLogWithBaselines({{kLockR1, 1}}).ok());

    // A partial update whose replay depends on that certified pre-image.
    txn = node->BeginTransaction(rvm::RestoreMode::kNoRestore);
    ASSERT_TRUE(node->SetRange(txn, 1, 0, kSliceSize).ok());
    std::memset(node->GetRegion(1)->data(), 0x77, kSliceSize);
    ASSERT_TRUE(node->SetLockId(txn, kLockR1, 2).ok());
    ASSERT_TRUE(node->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  }

  // Rot a byte of the pre-image outside the pending redo range.
  const std::string db = rvm::RegionFileName(1);
  ASSERT_TRUE(store.FlipBit(db, 2 * kSliceSize + 3, 5).ok());
  const RegionBytes rotten = *ReadRegionFile(&store, 1);

  auto built = rvm::LogIndex::Build(&store, {rvm::LogFileName(1)});
  ASSERT_TRUE(built.ok());
  rvm::IncrementalRecovery recovery(&store, std::move(*built));
  ASSERT_EQ(1u, recovery.PendingPages());

  // First touch discovers the rot: DATA_LOSS, the page stays pending, and
  // the damaged bytes were NOT overwritten by the redo.
  base::Status touched = recovery.MaterializePage(1, 0);
  ASSERT_FALSE(touched.ok());
  EXPECT_EQ(base::StatusCode::kDataLoss, touched.code());
  EXPECT_EQ(1u, recovery.PendingPages());
  EXPECT_EQ(rotten, *ReadRegionFile(&store, 1));

  // Heal the page (flip the bit back — a scrubber's replica repair in
  // miniature) and the very same materialization succeeds.
  ASSERT_TRUE(store.FlipBit(db, 2 * kSliceSize + 3, 5).ok());
  ASSERT_TRUE(recovery.MaterializePage(1, 0).ok());
  EXPECT_TRUE(recovery.Drained());
  RegionBytes expected(kRegionSize, 0x42);
  std::memset(expected.data(), 0x77, kSliceSize);
  EXPECT_EQ(expected, *ReadRegionFile(&store, 1));
  ASSERT_TRUE(VerifyRegionPages(&store, 1).ok());
}

}  // namespace
