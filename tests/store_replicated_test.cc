// Replicated storage service: mirroring, failover, failure detection,
// resynchronization, and the full log-based coherency stack running over a
// replicated store that loses its primary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/lbc/client.h"
#include "src/rvm/recovery.h"
#include "src/store/crash_point_store.h"
#include "src/store/mem_store.h"
#include "src/store/replicated_store.h"

namespace {

struct ReplicaSet {
  explicit ReplicaSet(int n) : backends(n) {
    std::vector<store::DurableStore*> ptrs;
    for (auto& b : backends) {
      ptrs.push_back(&b);
    }
    replicated = std::make_unique<store::ReplicatedStore>(ptrs);
  }
  std::vector<store::MemStore> backends;
  std::unique_ptr<store::ReplicatedStore> replicated;
};

TEST(ReplicatedStore, WritesMirrorToAllReplicas) {
  ReplicaSet rs(3);
  auto file = std::move(*rs.replicated->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("data", 4)).ok());
  ASSERT_TRUE(file->Sync().ok());
  for (auto& backend : rs.backends) {
    auto direct = std::move(*backend.Open("f", false));
    char buf[4];
    ASSERT_TRUE(direct->ReadExact(0, buf, 4).ok());
    EXPECT_EQ(0, std::memcmp(buf, "data", 4));
    EXPECT_EQ(1u, backend.sync_count());  // the Sync reached every replica
  }
}

TEST(ReplicatedStore, ReadsFailOverWhenPrimaryDies) {
  ReplicaSet rs(2);
  auto file = std::move(*rs.replicated->Open("f", true));
  ASSERT_TRUE(file->Write(0, base::AsBytes("safe", 4)).ok());
  rs.replicated->MarkDown(0);
  char buf[4];
  ASSERT_TRUE(file->ReadExact(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "safe", 4));
  EXPECT_EQ(1, rs.replicated->healthy_replicas());
}

TEST(ReplicatedStore, WriteFailureMarksReplicaDown) {
  ReplicaSet rs(2);
  auto file = std::move(*rs.replicated->Open("f", true));
  rs.backends[0].FailWritesAfterBytes(0);  // replica 0 starts failing writes
  ASSERT_TRUE(file->Write(0, base::AsBytes("x", 1)).ok());  // replica 1 carries it
  EXPECT_FALSE(rs.replicated->IsUp(0));
  EXPECT_TRUE(rs.replicated->IsUp(1));
}

TEST(ReplicatedStore, AllReplicasDownIsUnavailable) {
  ReplicaSet rs(2);
  auto file = std::move(*rs.replicated->Open("f", true));
  rs.replicated->MarkDown(0);
  rs.replicated->MarkDown(1);
  EXPECT_FALSE(file->Write(0, base::AsBytes("x", 1)).ok());
  char c;
  EXPECT_FALSE(file->ReadExact(0, &c, 1).ok());
}

TEST(ReplicatedStore, MissingFileIsNotAReplicaFailure) {
  ReplicaSet rs(2);
  auto r = rs.replicated->Open("absent", /*create=*/false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(base::StatusCode::kNotFound, r.status().code());
  EXPECT_EQ(2, rs.replicated->healthy_replicas());
}

TEST(ReplicatedStore, ResyncAndReviveRestoresRedundancy) {
  ReplicaSet rs(2);
  {
    auto file = std::move(*rs.replicated->Open("f", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("v1", 2)).ok());
  }
  rs.replicated->MarkDown(1);
  {
    auto file = std::move(*rs.replicated->Open("f", true));
    ASSERT_TRUE(file->Write(0, base::AsBytes("v2", 2)).ok());  // replica 1 misses this
  }
  // Repair: copy replica 0's state onto replica 1, then revive it.
  ASSERT_TRUE(store::ReplicatedStore::CopyAll(&rs.backends[0], &rs.backends[1]).ok());
  ASSERT_TRUE(rs.replicated->Revive(1).ok());
  EXPECT_EQ(2, rs.replicated->healthy_replicas());
  // Replica 1 is current again.
  auto direct = std::move(*rs.backends[1].Open("f", false));
  char buf[2];
  ASSERT_TRUE(direct->ReadExact(0, buf, 2).ok());
  EXPECT_EQ(0, std::memcmp(buf, "v2", 2));
}

// Pins CopyAll's durability contract: when Revive is called, the repaired
// replica's state must survive a power loss — file contents fsynced, stale
// destination-only files durably removed. A crash is driven at every
// mutating op of the resync, followed by reboot + retry + power loss.
TEST(ReplicatedStore, CopyAllSurvivesCrashAtEveryOp) {
  auto prepare = [](store::MemStore* src, store::MemStore* dst) {
    {
      auto f = std::move(*src->Open("f", true));
      ASSERT_TRUE(f->Write(0, base::AsBytes("fresh-f", 7)).ok());
      ASSERT_TRUE(f->Sync().ok());
      auto g = std::move(*src->Open("g", true));
      ASSERT_TRUE(g->Write(0, base::AsBytes("fresh-g!", 8)).ok());
      ASSERT_TRUE(g->Sync().ok());
    }
    {
      // The destination diverged while down: an outdated copy of one file
      // plus a file the source no longer has — both durable on dst.
      auto f = std::move(*dst->Open("f", true));
      ASSERT_TRUE(f->Write(0, base::AsBytes("old", 3)).ok());
      ASSERT_TRUE(f->Sync().ok());
      auto s = std::move(*dst->Open("stale", true));
      ASSERT_TRUE(s->Write(0, base::AsBytes("junk", 4)).ok());
      ASSERT_TRUE(s->Sync().ok());
    }
    ASSERT_TRUE(dst->SyncDir().ok());
  };
  auto expect_matches_source = [](store::MemStore* src, store::MemStore* dst) {
    auto src_names = *src->List();
    auto dst_names = *dst->List();
    std::sort(src_names.begin(), src_names.end());
    std::sort(dst_names.begin(), dst_names.end());
    EXPECT_EQ(src_names, dst_names);
    for (const std::string& name : src_names) {
      auto a = std::move(*src->Open(name, false));
      auto b = std::move(*dst->Open(name, false));
      ASSERT_EQ(*a->Size(), *b->Size()) << name;
      std::vector<char> want(*a->Size()), got(*b->Size());
      ASSERT_TRUE(a->ReadExact(0, want.data(), want.size()).ok());
      ASSERT_TRUE(b->ReadExact(0, got.data(), got.size()).ok());
      EXPECT_EQ(want, got) << name;
    }
  };

  // Count the resync's mutating ops with an unharmed dry run.
  uint64_t total_ops = 0;
  {
    store::MemStore src, dst;
    prepare(&src, &dst);
    store::CrashPointStore cps(&dst);
    ASSERT_TRUE(store::ReplicatedStore::CopyAll(&src, &cps).ok());
    total_ops = cps.op_count();
  }
  ASSERT_GT(total_ops, 0u);

  for (uint64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
    SCOPED_TRACE("crash at op " + std::to_string(crash_at));
    store::MemStore src, dst;
    prepare(&src, &dst);
    store::CrashPointStore cps(&dst);
    cps.SetCrashHook([&] { dst.Crash(0); });
    cps.ArmCrashAtOp(crash_at);
    EXPECT_FALSE(store::ReplicatedStore::CopyAll(&src, &cps).ok());
    cps.Disarm();
    // Reboot: the interrupted resync restarts from scratch and must land
    // the replica in a fully durable source-identical state...
    ASSERT_TRUE(store::ReplicatedStore::CopyAll(&src, &cps).ok());
    // ...that survives a power loss right before Revive.
    dst.Crash(0);
    expect_matches_source(&src, &dst);
  }
}

TEST(ReplicatedStore, RenameAndRemoveMirror) {
  ReplicaSet rs(2);
  { auto file = std::move(*rs.replicated->Open("a", true)); }
  ASSERT_TRUE(rs.replicated->Rename("a", "b").ok());
  for (auto& backend : rs.backends) {
    EXPECT_FALSE(*backend.Exists("a"));
    EXPECT_TRUE(*backend.Exists("b"));
  }
  ASSERT_TRUE(rs.replicated->Remove("b").ok());
  EXPECT_FALSE(*rs.replicated->Exists("b"));
}

// The headline property: the whole coherency + recovery stack survives the
// death of the primary storage replica (paper §2: "the storage service
// could be transparently replicated to reduce the probability of a server
// failure").
TEST(ReplicatedStore, CoherencyStackSurvivesPrimaryLoss) {
  ReplicaSet rs(2);
  constexpr rvm::RegionId kRegion = 1;
  constexpr rvm::LockId kLock = 10;
  lbc::Cluster cluster(rs.replicated.get());
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 4096).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 4096).ok());

  auto commit = [&](lbc::Client* c, uint8_t v) {
    lbc::Transaction txn = c->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 1).ok());
    c->GetRegion(kRegion)->data()[0] = v;
    ASSERT_TRUE(txn.Commit().ok());
  };
  commit(a.get(), 1);
  ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 1, 5000));

  // Primary storage replica dies; commits keep flowing to the survivor.
  rs.replicated->MarkDown(0);
  commit(b.get(), 2);
  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 2, 5000));

  // Recovery from the surviving replica alone sees both commits.
  a.reset();
  b.reset();
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&rs.backends[1],
                                          {rvm::LogFileName(1), rvm::LogFileName(2)})
                  .ok());
  auto db = std::move(*rs.backends[1].Open(rvm::RegionFileName(kRegion), false));
  uint8_t value = 0;
  ASSERT_TRUE(db->ReadExact(0, &value, 1).ok());
  EXPECT_EQ(2, value);
}

}  // namespace
