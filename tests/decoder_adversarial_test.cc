// Adversarial-bytes tests for the untrusted decoders, pinning every find
// from the fuzzing campaign at the decoder level (the byte-exact inputs are
// also checked in under fuzz/crashes/ and replayed by fuzz_regression_test):
// truncation at every boundary, maximal length fields, dual encodings,
// wrapping arithmetic, trailing bytes, and zero-size edge cases.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/buffer.h"
#include "src/lbc/wire_format.h"
#include "src/rvm/log_format.h"
#include "src/rvm/log_io.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/recovery.h"
#include "src/store/mem_store.h"

namespace {

using base::ByteSpan;

rvm::TransactionRecord SampleTxn() {
  rvm::TransactionRecord txn;
  txn.node = 3;
  txn.commit_seq = 9;
  txn.locks = {{7, 1}, {500, 2}};
  rvm::RangeImage r;
  r.region = 1;
  r.offset = 4096;
  r.data = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  txn.ranges = {r};
  return txn;
}

// --- DecodeTransaction -------------------------------------------------------

TEST(AdversarialTransaction, TruncationAtEveryBoundaryRejects) {
  std::vector<uint8_t> full = rvm::EncodeTransaction(SampleTxn());
  rvm::TransactionRecord out;
  ASSERT_TRUE(rvm::DecodeTransaction(ByteSpan(full.data(), full.size()), &out).ok());
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(full.data(), len), &out).ok())
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(AdversarialTransaction, MaximalCountFieldsReject) {
  // A huge n_locks / n_ranges must be rejected from the count alone —
  // before any allocation sized by it.
  for (uint64_t huge : {uint64_t{1} << 20, uint64_t{1} << 40, UINT64_MAX}) {
    {
      base::Writer w;
      w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
      w.WriteVarint(0);     // node
      w.WriteVarint(1);     // commit_seq
      w.WriteVarint(huge);  // n_locks
      std::vector<uint8_t> bytes = w.TakeBytes();
      rvm::TransactionRecord out;
      EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
    }
    {
      base::Writer w;
      w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
      w.WriteVarint(0);
      w.WriteVarint(1);
      w.WriteVarint(0);     // n_locks
      w.WriteVarint(huge);  // n_ranges
      std::vector<uint8_t> bytes = w.TakeBytes();
      rvm::TransactionRecord out;
      EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
    }
  }
}

TEST(AdversarialTransaction, MaximalRangeLengthRejects) {
  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
  w.WriteVarint(0);
  w.WriteVarint(1);
  w.WriteVarint(0);           // n_locks
  w.WriteVarint(1);           // n_ranges
  w.WriteVarint(1);           // region
  w.WriteVarint(0);           // offset
  w.WriteVarint(UINT64_MAX);  // len, far beyond the payload
  w.WriteU8(0x00);
  std::vector<uint8_t> bytes = w.TakeBytes();
  rvm::TransactionRecord out;
  EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialTransaction, NonMinimalVarintRejects) {
  // 0x80 0x00 is a second spelling of node id 0: accepting it would break
  // byte-level dedup and re-encode identity (fuzz find, pinned).
  std::vector<uint8_t> canonical = rvm::EncodeTransaction(rvm::TransactionRecord{});
  std::vector<uint8_t> loose = {canonical[0], 0x80, 0x00};
  loose.insert(loose.end(), canonical.begin() + 2, canonical.end());
  rvm::TransactionRecord out;
  ASSERT_TRUE(rvm::DecodeTransaction(ByteSpan(canonical.data(), canonical.size()), &out).ok());
  EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(loose.data(), loose.size()), &out).ok());
}

TEST(AdversarialTransaction, NodeIdAboveU32Rejects) {
  // NodeId is uint32; a wider varint used to truncate silently through
  // static_cast, mis-attributing the record to another node (fuzz find).
  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
  w.WriteVarint(uint64_t{1} << 40);
  w.WriteVarint(1);
  w.WriteVarint(0);
  w.WriteVarint(0);
  std::vector<uint8_t> bytes = w.TakeBytes();
  rvm::TransactionRecord out;
  EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialTransaction, RangeEndWrappingU64Rejects) {
  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
  w.WriteVarint(0);
  w.WriteVarint(1);
  w.WriteVarint(0);           // n_locks
  w.WriteVarint(1);           // n_ranges
  w.WriteVarint(1);           // region
  w.WriteVarint(UINT64_MAX);  // offset
  w.WriteVarint(1);           // len: end wraps to 0
  w.WriteU8(0xAA);
  std::vector<uint8_t> bytes = w.TakeBytes();
  rvm::TransactionRecord out;
  EXPECT_FALSE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialTransaction, ZeroEverythingRoundTrips) {
  // The all-zero-counts record is valid and one-spelling canonical.
  rvm::TransactionRecord empty;
  std::vector<uint8_t> bytes = rvm::EncodeTransaction(empty);
  rvm::TransactionRecord out;
  ASSERT_TRUE(rvm::DecodeTransaction(ByteSpan(bytes.data(), bytes.size()), &out).ok());
  EXPECT_EQ(out, empty);
  EXPECT_EQ(rvm::EncodeTransaction(out), bytes);
}

TEST(AdversarialRecovery, CheckpointWithTrailingBytesRejects) {
  // A checkpoint record CLEARS the recovered prefix; the scan used to accept
  // one with trailing garbage, so a forged frame could silently truncate
  // recovery (fuzz find).
  store::MemStore store;
  auto file = store.Open("log_0.rvm", /*create=*/true);
  ASSERT_TRUE(file.ok());
  rvm::LogWriter writer(std::move(*file));
  std::vector<uint8_t> txn = rvm::EncodeTransaction(SampleTxn());
  ASSERT_TRUE(writer.Append(ByteSpan(txn.data(), txn.size()), false).ok());
  std::vector<uint8_t> loose_cp = {static_cast<uint8_t>(rvm::LogRecordKind::kCheckpoint),
                                   0xFF};
  ASSERT_TRUE(writer.Append(ByteSpan(loose_cp.data(), loose_cp.size()), false).ok());
  auto txns = rvm::ReadLogTransactions(&store, "log_0.rvm");
  EXPECT_FALSE(txns.ok());
}

// --- wire update -------------------------------------------------------------

TEST(AdversarialUpdate, TruncationAtEveryBoundaryRejects) {
  for (bool compress : {false, true}) {
    std::vector<uint8_t> full = lbc::EncodeUpdateRecord(SampleTxn(), compress);
    rvm::TransactionRecord out;
    ASSERT_TRUE(lbc::DecodeUpdate(ByteSpan(full.data(), full.size()), &out).ok());
    for (size_t len = 0; len < full.size(); ++len) {
      EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(full.data(), len), &out).ok())
          << (compress ? "compressed" : "uncompressed") << " prefix of " << len
          << " bytes accepted";
    }
  }
}

TEST(AdversarialUpdate, BadCompressionFlagRejects) {
  std::vector<uint8_t> bytes = lbc::EncodeUpdateRecord(SampleTxn(), true);
  bytes[1] = 0x37;  // flag must be exactly 0 or 1 (fuzz find)
  rvm::TransactionRecord out;
  EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialUpdate, NonzeroReservedPaddingRejects) {
  rvm::TransactionRecord txn;
  txn.node = 0;
  txn.commit_seq = 1;
  rvm::RangeImage r;
  r.region = 1;
  r.offset = 0;
  r.data = {0x11, 0x22, 0x33, 0x44};
  txn.ranges = {r};
  std::vector<uint8_t> bytes = lbc::EncodeUpdateRecord(txn, false);
  rvm::TransactionRecord out;
  ASSERT_TRUE(lbc::DecodeUpdate(ByteSpan(bytes.data(), bytes.size()), &out).ok());
  // Byte 6+21 is the first reserved-padding byte of the emulated RVM header;
  // the decoder used to Skip() it unread — 83 bytes a forgery could ride in
  // while re-encode comparison saw nothing (fuzz find).
  bytes[6 + 21] = 0x42;
  EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialUpdate, DeltaOffsetWrappingU64Rejects) {
  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(lbc::MsgType::kUpdate));
  w.WriteU8(1);      // compressed
  w.WriteVarint(0);  // node
  w.WriteVarint(1);  // commit_seq
  w.WriteVarint(0);  // n_locks
  w.WriteVarint(2);  // n_ranges
  w.WriteU8(0);      // absolute
  w.WriteVarint(1);
  w.WriteVarint(UINT64_MAX - 2);  // offset near the top
  w.WriteVarint(0);               // len
  w.WriteU8(0x01);                // delta tag
  w.WriteVarint(1);
  w.WriteVarint(100);  // materialized offset wraps (fuzz find)
  w.WriteVarint(0);
  std::vector<uint8_t> bytes = w.TakeBytes();
  rvm::TransactionRecord out;
  EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialUpdate, DeltaWithNoPredecessorRejects) {
  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(lbc::MsgType::kUpdate));
  w.WriteU8(1);
  w.WriteVarint(0);
  w.WriteVarint(1);
  w.WriteVarint(0);
  w.WriteVarint(1);  // n_ranges
  w.WriteU8(0x01);   // delta tag on the FIRST range
  w.WriteVarint(1);
  w.WriteVarint(5);
  w.WriteVarint(0);
  std::vector<uint8_t> bytes = w.TakeBytes();
  rvm::TransactionRecord out;
  EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(bytes.data(), bytes.size()), &out).ok());
}

TEST(AdversarialUpdate, AbsoluteAddressWhereEncoderEmitsDeltaRejects) {
  // Two spellings of the same range list would defeat byte-level dedup; the
  // decoder requires the delta form exactly when the encoder would emit it.
  rvm::TransactionRecord txn;
  txn.node = 0;
  txn.commit_seq = 1;
  rvm::RangeImage a, b;
  a.region = 1;
  a.offset = 100;
  a.data = {0x01};
  b.region = 1;
  b.offset = 200;  // gap 100 < kNearRangeBound: encoder uses a delta
  b.data = {0x02};
  txn.ranges = {a, b};
  std::vector<uint8_t> canonical = lbc::EncodeUpdateRecord(txn, true);
  rvm::TransactionRecord out;
  ASSERT_TRUE(lbc::DecodeUpdate(ByteSpan(canonical.data(), canonical.size()), &out).ok());

  base::Writer w;
  w.WriteU8(static_cast<uint8_t>(lbc::MsgType::kUpdate));
  w.WriteU8(1);
  w.WriteVarint(0);
  w.WriteVarint(1);
  w.WriteVarint(0);
  w.WriteVarint(2);
  w.WriteU8(0);  // absolute
  w.WriteVarint(1);
  w.WriteVarint(100);
  w.WriteVarint(1);
  w.WriteU8(0x01);
  w.WriteU8(0);  // absolute again, where the encoder would emit delta
  w.WriteVarint(1);
  w.WriteVarint(200);
  w.WriteVarint(1);
  w.WriteU8(0x02);
  std::vector<uint8_t> loose = w.TakeBytes();
  EXPECT_FALSE(lbc::DecodeUpdate(ByteSpan(loose.data(), loose.size()), &out).ok());
}

// --- lock messages -----------------------------------------------------------

TEST(AdversarialLockMessages, TrailingBytesReject) {
  // Every lock decoder used to ignore unconsumed bytes (fuzz find).
  {
    std::vector<uint8_t> b = lbc::EncodeLockRequest({.lock = 1, .requester = 2});
    b.push_back(0);
    lbc::LockRequestMsg out;
    EXPECT_FALSE(lbc::DecodeLockRequest(ByteSpan(b.data(), b.size()), &out).ok());
  }
  {
    std::vector<uint8_t> b = lbc::EncodeLockForward({.lock = 1, .requester = 2});
    b.push_back(0);
    lbc::LockForwardMsg out;
    EXPECT_FALSE(lbc::DecodeLockForward(ByteSpan(b.data(), b.size()), &out).ok());
  }
  {
    std::vector<uint8_t> b = lbc::EncodeLockRevoke({.lock = 1, .epoch = 2, .manager = 0});
    b.push_back(0);
    lbc::LockRevokeMsg out;
    EXPECT_FALSE(lbc::DecodeLockRevoke(ByteSpan(b.data(), b.size()), &out).ok());
  }
  {
    std::vector<uint8_t> b = lbc::EncodeLockRevokeReply({.lock = 1, .epoch = 2, .node = 3});
    b.push_back(0);
    lbc::LockRevokeReplyMsg out;
    EXPECT_FALSE(lbc::DecodeLockRevokeReply(ByteSpan(b.data(), b.size()), &out).ok());
  }
  {
    std::vector<uint8_t> b = lbc::EncodeLockToken({.lock = 1, .token_seq = 2}, true);
    b.push_back(0);
    lbc::LockTokenMsg out;
    EXPECT_FALSE(lbc::DecodeLockToken(ByteSpan(b.data(), b.size()), &out).ok());
  }
}

TEST(AdversarialLockMessages, UndefinedRevokeReplyFlagBitRejects) {
  std::vector<uint8_t> b = lbc::EncodeLockRevokeReply(
      {.lock = 1, .epoch = 1, .node = 1, .holding = false, .had_token = true,
       .token_seq = 1, .applied_seq = 1});
  b[b.size() - 3] |= 0x80;  // flags byte holds only bits 0 and 1
  lbc::LockRevokeReplyMsg out;
  EXPECT_FALSE(lbc::DecodeLockRevokeReply(ByteSpan(b.data(), b.size()), &out).ok());
}

// --- checksum sidecar --------------------------------------------------------

class AdversarialSidecar : public ::testing::Test {
 protected:
  // Writes raw bytes as region 1's sidecar (and an empty database file).
  void WriteSidecarBytes(const std::vector<uint8_t>& bytes) {
    auto db = store_.Open(rvm::RegionFileName(1), /*create=*/true);
    ASSERT_TRUE(db.ok());
    auto sc = store_.Open(rvm::ChecksumFileName(1), /*create=*/true);
    ASSERT_TRUE(sc.ok());
    // Truncate first: callers re-write the same file with shorter images.
    ASSERT_TRUE((*sc)->Truncate(0).ok());
    ASSERT_TRUE((*sc)->Write(0, ByteSpan(bytes.data(), bytes.size())).ok());
  }

  store::MemStore store_;
};

TEST_F(AdversarialSidecar, TruncationAtEveryHeaderBoundaryIsVacuous) {
  // A sidecar shorter than its 16-byte header (any tear point) must degrade
  // to "no believable entries" — never a crash, never a wrong verdict.
  std::vector<uint8_t> header = {0x52, 0x56, 0x53, 0x4D,  // magic "RVSM"
                                 0x01, 0x00, 0x00, 0x00,  // version
                                 0x00, 0x20, 0x00, 0x00,  // page size 8192
                                 0x00, 0x00, 0x00, 0x00};
  for (size_t len = 0; len <= header.size(); ++len) {
    WriteSidecarBytes(std::vector<uint8_t>(header.begin(), header.begin() + len));
    auto sidecar = rvm::ChecksumSidecar::Open(&store_, 1, /*create=*/false);
    ASSERT_TRUE(sidecar.ok()) << "tear at " << len;
    auto entry = (*sidecar)->ReadEntry(0);
    ASSERT_TRUE(entry.ok()) << "tear at " << len;
    // Only the full, valid header may carry entries — and byte-for-byte
    // prefix tears have none anyway (no entry bytes present).
    EXPECT_FALSE(entry->has_value()) << "tear at " << len;
  }
}

TEST_F(AdversarialSidecar, EntryOffsetOverflowReadsAsNoEntry) {
  // page * 8 + 16 used to wrap uint64 for huge page indices and alias a low
  // entry — a wrong verdict from pure arithmetic (fuzz find).
  std::vector<uint8_t> db(rvm::kDbPageSize, 0x5A);
  {
    auto file = store_.Open(rvm::RegionFileName(1), /*create=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Write(0, ByteSpan(db.data(), db.size())).ok());
  }
  ASSERT_TRUE(rvm::RewriteRegionChecksums(&store_, 1).ok());
  auto sidecar = rvm::ChecksumSidecar::Open(&store_, 1, /*create=*/false);
  ASSERT_TRUE(sidecar.ok());
  auto low = (*sidecar)->ReadEntry(0);
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(low->has_value());
  for (uint64_t page : {UINT64_MAX / rvm::kChecksumEntrySize,
                        UINT64_MAX / rvm::kChecksumEntrySize + 1, UINT64_MAX}) {
    auto entry = (*sidecar)->ReadEntry(page);
    ASSERT_TRUE(entry.ok());
    EXPECT_FALSE(entry->has_value()) << "page " << page << " aliased a low entry";
  }
}

TEST_F(AdversarialSidecar, ZeroPageDatabaseVerifiesClean) {
  auto db = store_.Open(rvm::RegionFileName(1), /*create=*/true);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(rvm::RewriteRegionChecksums(&store_, 1).ok());
  auto bad = rvm::VerifyImagePages(&store_, 1, nullptr, 0, 0);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->empty());
}

TEST_F(AdversarialSidecar, GarbageEntriesDegradeToUnverified) {
  // Garbage entry bytes fail the per-entry guard and read as "no entry":
  // verification passes vacuously rather than flagging healthy data.
  std::vector<uint8_t> bytes = {0x52, 0x56, 0x53, 0x4D, 0x01, 0x00, 0x00, 0x00,
                                0x00, 0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  for (int i = 0; i < 16; ++i) {
    bytes.push_back(static_cast<uint8_t>(0xC3 + i));
  }
  WriteSidecarBytes(bytes);
  std::vector<uint8_t> db(2 * rvm::kDbPageSize, 0x77);
  {
    auto file = store_.Open(rvm::RegionFileName(1), /*create=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Write(0, ByteSpan(db.data(), db.size())).ok());
  }
  auto bad = rvm::VerifyImagePages(&store_, 1, db.data(), db.size(), db.size());
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->empty());
}

}  // namespace
