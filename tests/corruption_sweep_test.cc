// Deterministic silent-corruption sweep (the bit-rot analogue of the crash
// explorer): a two-client workload commits a known pattern over a replicated
// store whose every replica sits on a CorruptionInjectingStore, then rot is
// injected at every page of every replica — bit flips, zeroed sectors,
// sidecar damage, mid-log damage, and read EIO — and after each injection we
// assert the two headline properties:
//
//   1. The server never serves a corrupt byte: an image fetch either returns
//      exactly the expected bytes (served from a clean replica) or fails
//      with DATA_LOSS. Silence is never an option.
//   2. The scrubber converges: one scrub repairs the damage (from a replica
//      when one is clean, from the merged client logs when none is), the
//      backing bytes equal the expected image on every replica, and a second
//      scrub reports nothing wrong.
//
// Both repair paths (repaired_from_replica and repaired_from_log), sidecar
// entry rebuild, log repair, and the client's bounded re-fetch are each
// exercised and asserted individually.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/lbc/client.h"
#include "src/obs/export.h"
#include "src/rvm/log_io.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/rvm.h"
#include "src/rvm/scrub.h"
#include "src/store/corrupting_store.h"
#include "src/store/mem_store.h"
#include "src/store/replicated_store.h"

namespace {

class ObsSnapshotEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    std::string path = obs::SnapshotPath();
    base::Status status = obs::WriteJsonSnapshot(path);
    if (status.ok()) {
      std::printf("obs snapshot: %s\n", path.c_str());
    } else {
      std::printf("obs snapshot failed: %s\n", status.ToString().c_str());
    }
  }
};
const ::testing::Environment* const kObsEnv =
    ::testing::AddGlobalTestEnvironment(new ObsSnapshotEnvironment());

constexpr rvm::RegionId kRegion = 7;
constexpr rvm::LockId kLock = 100;
constexpr uint64_t kPages = 3;
constexpr uint64_t kLength = kPages * rvm::kDbPageSize;

// The replicated, corruptible storage stack plus the committed gold image.
struct Fixture {
  Fixture() {
    corrupt.emplace_back(new store::CorruptionInjectingStore(&backends[0], 0xC0FFEE));
    corrupt.emplace_back(new store::CorruptionInjectingStore(&backends[1], 0xDECAF));
    replicated = std::make_unique<store::ReplicatedStore>(
        std::vector<store::DurableStore*>{corrupt[0].get(), corrupt[1].get()});
    cluster = std::make_unique<lbc::Cluster>(replicated.get());
    cluster->DefineLock(kLock, kRegion, 1);
  }

  // Commits full-page patterns from two clients (so the merged history has
  // multiple logs and covers every byte of the region), replays the logs
  // into the database files WITHOUT trimming (log reconstruction must stay
  // possible), and snapshots the resulting region file as the gold image.
  void CommitWorkloadAndReplay() {
    auto a = std::move(*lbc::Client::Create(cluster.get(), 1, {}));
    auto b = std::move(*lbc::Client::Create(cluster.get(), 2, {}));
    ASSERT_TRUE(a->MapRegion(kRegion, kLength).ok());
    ASSERT_TRUE(b->MapRegion(kRegion, kLength).ok());
    auto commit = [&](lbc::Client* c, uint64_t offset, uint64_t len, uint8_t fill) {
      lbc::Transaction txn = c->Begin();
      ASSERT_TRUE(txn.Acquire(kLock).ok());
      ASSERT_TRUE(txn.SetRange(kRegion, offset, len).ok());
      std::memset(c->GetRegion(kRegion)->data() + offset, fill, len);
      ASSERT_TRUE(txn.Commit().ok());
    };
    commit(a.get(), 0 * rvm::kDbPageSize, rvm::kDbPageSize, 0x11);
    commit(b.get(), 1 * rvm::kDbPageSize, rvm::kDbPageSize, 0x22);
    commit(a.get(), 2 * rvm::kDbPageSize, rvm::kDbPageSize, 0x33);
    commit(b.get(), 8000, 400, 0x44);  // straddles the page 0/1 boundary
    ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 4, 5000));
    a.reset();
    b.reset();

    ASSERT_TRUE(cluster
                    ->ReplayAndRecordBaselines(
                        {rvm::LogFileName(1), rvm::LogFileName(2)})
                    .ok());
    gold = ReadBackend(0, rvm::RegionFileName(kRegion));
    ASSERT_EQ(kLength, gold.size());
    ASSERT_EQ(gold, ReadBackend(1, rvm::RegionFileName(kRegion)));
  }

  // Reads a file's full contents directly from one MemStore backend,
  // bypassing the decorators and the replica routing.
  std::vector<uint8_t> ReadBackend(size_t replica, const std::string& name) {
    auto file = std::move(*backends[replica].Open(name, /*create=*/false));
    std::vector<uint8_t> bytes(*file->Size());
    if (!bytes.empty()) {
      EXPECT_TRUE(file->ReadExact(0, bytes.data(), bytes.size()).ok());
    }
    return bytes;
  }

  // The server image fetch (a fresh Rvm mapping the region): must yield the
  // gold bytes or fail with DATA_LOSS — never corrupt data.
  void ExpectNeverServesCorruptImage() {
    auto rvm = std::move(*rvm::Rvm::Open(replicated.get(), /*node=*/99, {}));
    auto mapped = rvm->MapRegion(kRegion, kLength);
    if (mapped.ok()) {
      EXPECT_EQ(0, std::memcmp((*mapped)->data(), gold.data(), gold.size()))
          << "image fetch served corrupt bytes";
    } else {
      EXPECT_EQ(base::StatusCode::kDataLoss, mapped.status().code());
    }
  }

  void ExpectBackendsMatchGold() {
    EXPECT_EQ(gold, ReadBackend(0, rvm::RegionFileName(kRegion)));
    EXPECT_EQ(gold, ReadBackend(1, rvm::RegionFileName(kRegion)));
  }

  store::MemStore backends[2];
  std::vector<std::unique_ptr<store::CorruptionInjectingStore>> corrupt;
  std::unique_ptr<store::ReplicatedStore> replicated;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<uint8_t> gold;
};

TEST(CorruptionSweep, EveryPageEveryReplicaEveryFault) {
  Fixture fx;
  fx.CommitWorkloadAndReplay();
  rvm::Scrubber scrubber(fx.replicated.get(), fx.replicated.get());
  const std::string db = rvm::RegionFileName(kRegion);

  // An undamaged stack scrubs clean.
  {
    auto report = *scrubber.ScrubOnce();
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(kPages, report.pages_scanned);
    EXPECT_GE(report.log_records_scanned, 4u);
  }

  // --- Sweep A: single-replica rot on every page, both fault kinds --------
  // One replica stays clean, so read-repair must restore the other.
  uint64_t repaired_total = 0;
  for (uint64_t page = 0; page < kPages; ++page) {
    for (size_t replica = 0; replica < 2; ++replica) {
      for (int kind = 0; kind < 2; ++kind) {
        SCOPED_TRACE("page " + std::to_string(page) + " replica " +
                     std::to_string(replica) + (kind == 0 ? " bitflip" : " zero"));
        if (kind == 0) {
          ASSERT_TRUE(fx.corrupt[replica]
                          ->FlipBit(db, page * rvm::kDbPageSize + 1000 + 13 * page,
                                    (page + replica) % 8)
                          .ok());
        } else {
          ASSERT_TRUE(
              fx.corrupt[replica]->ZeroRange(db, page * rvm::kDbPageSize + 512, 512).ok());
        }
        fx.ExpectNeverServesCorruptImage();
        auto report = *scrubber.ScrubOnce();
        EXPECT_GE(report.repaired_from_replica, 1u);
        EXPECT_EQ(0u, report.unrepairable);
        repaired_total += report.repaired_from_replica;
        fx.ExpectBackendsMatchGold();
        EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
      }
    }
  }
  EXPECT_GE(repaired_total, kPages * 2 * 2);
  EXPECT_TRUE(fx.replicated->IsSuspect(0));
  EXPECT_TRUE(fx.replicated->IsSuspect(1));

  // --- Sweep B: the same page rotten on EVERY replica ----------------------
  // No clean copy exists; the page must be rebuilt from the merged client
  // logs (never trimmed here) and accepted only via its checksum.
  for (uint64_t page = 0; page < kPages; ++page) {
    SCOPED_TRACE("page " + std::to_string(page) + " on all replicas");
    ASSERT_TRUE(fx.corrupt[0]->FlipBit(db, page * rvm::kDbPageSize + 77, 1).ok());
    ASSERT_TRUE(fx.corrupt[1]->FlipBit(db, page * rvm::kDbPageSize + 4321, 6).ok());
    {
      // Both replicas corrupt: the fetch MUST fail (nothing clean to serve).
      auto rvm = std::move(*rvm::Rvm::Open(fx.replicated.get(), 99, {}));
      auto mapped = rvm->MapRegion(kRegion, kLength);
      ASSERT_FALSE(mapped.ok());
      EXPECT_EQ(base::StatusCode::kDataLoss, mapped.status().code());
    }
    auto report = *scrubber.ScrubOnce();
    EXPECT_GE(report.repaired_from_log, 1u);
    EXPECT_EQ(0u, report.unrepairable);
    fx.ExpectBackendsMatchGold();
    EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
  }

  // --- Sweep C: read EIO on one replica's database file --------------------
  // An unreadable (not silently wrong) medium: the replicated read fails
  // over and the bad replica is marked down, exactly like any I/O error.
  fx.corrupt[0]->FailReads(db, true);
  {
    auto rvm = std::move(*rvm::Rvm::Open(fx.replicated.get(), 99, {}));
    auto mapped = rvm->MapRegion(kRegion, kLength);
    ASSERT_TRUE(mapped.ok());
    EXPECT_EQ(0, std::memcmp((*mapped)->data(), fx.gold.data(), fx.gold.size()));
  }
  EXPECT_FALSE(fx.replicated->IsUp(0));
  fx.corrupt[0]->ClearFailures();
  ASSERT_TRUE(store::ReplicatedStore::CopyAll(fx.replicated->replica(1),
                                              fx.replicated->replica(0))
                  .ok());
  ASSERT_TRUE(fx.replicated->Revive(0).ok());
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());

  // --- Sweep D: rot in the MIDDLE of a client log --------------------------
  // Distinguished from a legitimate torn tail by the valid frames after the
  // break, and repaired by copying the peer replica's clean chain.
  const std::string log = rvm::LogFileName(1);
  ASSERT_TRUE(fx.corrupt[0]->FlipBit(log, rvm::kFrameHeaderSize + 2, 5).ok());
  {
    auto report = *scrubber.ScrubOnce();
    EXPECT_GE(report.log_corruptions, 1u);
    EXPECT_GE(report.log_repairs, 1u);
    EXPECT_EQ(0u, report.unrepairable);
  }
  EXPECT_EQ(fx.ReadBackend(0, log), fx.ReadBackend(1, log));
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());

  // --- Sweep E: rot in the checksum sidecar itself -------------------------
  // The entry's self-guard fails, the entry reads as absent, and the
  // scrubber rebuilds it from the (intact) data — no false repair.
  const std::string sidecar = rvm::ChecksumFileName(kRegion);
  ASSERT_TRUE(
      fx.corrupt[0]
          ->FlipBit(sidecar, rvm::kChecksumHeaderSize + rvm::kChecksumEntrySize + 1, 4)
          .ok());
  {
    auto report = *scrubber.ScrubOnce();
    EXPECT_GE(report.entries_rebuilt, 1u);
    EXPECT_EQ(0u, report.repaired_from_replica);  // the data never changed
    EXPECT_EQ(0u, report.unrepairable);
  }
  fx.ExpectBackendsMatchGold();
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
}

// The client-side defense end to end: a fetch that hits rot fails with
// DATA_LOSS inside Client::MapRegion, which asks the cluster's scrubber to
// repair the region and re-fetches — bounded — so the application sees the
// correct image, never the rot, and the retry is visible in integrity.*.
TEST(CorruptionSweep, ClientRefetchAfterRepair) {
  Fixture fx;
  fx.CommitWorkloadAndReplay();
  rvm::Scrubber scrubber(fx.replicated.get(), fx.replicated.get());
  fx.cluster->SetScrubber(&scrubber);

  const std::string db = rvm::RegionFileName(kRegion);
  // Rot on replica 0 (the read path's first choice): a naive fetch would
  // serve it or die; the retry loop must transparently heal and succeed.
  ASSERT_TRUE(fx.corrupt[0]->FlipBit(db, 2048, 3).ok());

  const uint64_t retries_before =
      rvm::GlobalIntegrityMetrics()->image_fetch_retries->value();
  auto client = std::move(*lbc::Client::Create(fx.cluster.get(), 3, {}));
  auto mapped = client->MapRegion(kRegion, kLength);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(0, std::memcmp((*mapped)->data(), fx.gold.data(), fx.gold.size()));
  EXPECT_GE(rvm::GlobalIntegrityMetrics()->image_fetch_retries->value(),
            retries_before + 1);
  EXPECT_TRUE(fx.replicated->IsSuspect(0));
  fx.ExpectBackendsMatchGold();
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
}

// A mapping length that ends mid-page must not open an unverified window:
// the image's prefix of the boundary page is served to the application, so
// rot inside that prefix has to surface as DATA_LOSS, with the page
// completed from the database file and checked against its sidecar entry.
TEST(CorruptionSweep, PartialTailPageIsVerified) {
  Fixture fx;
  fx.CommitWorkloadAndReplay();
  const std::string db = rvm::RegionFileName(kRegion);
  // Non-page-aligned length: two full pages plus 100 bytes of page 2.
  const uint64_t kShort = 2 * rvm::kDbPageSize + 100;
  // Rot inside the served prefix of the boundary page, on the replica the
  // read path prefers.
  ASSERT_TRUE(fx.corrupt[0]->FlipBit(db, 2 * rvm::kDbPageSize + 50, 2).ok());
  {
    auto rvm = std::move(*rvm::Rvm::Open(fx.replicated.get(), 98, {}));
    auto mapped = rvm->MapRegion(kRegion, kShort);
    ASSERT_FALSE(mapped.ok()) << "served a corrupt partial tail page";
    EXPECT_EQ(base::StatusCode::kDataLoss, mapped.status().code());
  }
  // After repair the short mapping succeeds and serves the gold prefix.
  rvm::Scrubber scrubber(fx.replicated.get(), fx.replicated.get());
  auto report = *scrubber.ScrubOnce();
  EXPECT_GE(report.repaired_from_replica, 1u);
  {
    auto rvm = std::move(*rvm::Rvm::Open(fx.replicated.get(), 97, {}));
    auto mapped = rvm->MapRegion(kRegion, kShort);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ(0, std::memcmp((*mapped)->data(), fx.gold.data(), kShort));
  }
}

// The automatic repair path (Client::MapRegion -> TryRepairRegion ->
// ScrubRegion) runs while other clients may be mid-append, so it must never
// rewrite a log file — a rewrite racing an append would truncate a freshly
// committed record. Log damage is still detected; the rewrite itself is
// reserved for the quiesced ScrubOnce.
TEST(CorruptionSweep, AutomaticRegionScrubNeverRewritesLogs) {
  Fixture fx;
  fx.CommitWorkloadAndReplay();
  rvm::Scrubber scrubber(fx.replicated.get(), fx.replicated.get());

  const std::string log = rvm::LogFileName(1);
  ASSERT_TRUE(fx.corrupt[0]->FlipBit(log, rvm::kFrameHeaderSize + 2, 5).ok());
  const std::vector<uint8_t> before0 = fx.ReadBackend(0, log);
  const std::vector<uint8_t> before1 = fx.ReadBackend(1, log);

  auto report = *scrubber.ScrubRegion(kRegion);
  EXPECT_GE(report.log_corruptions, 1u);  // detected...
  EXPECT_EQ(0u, report.log_repairs);      // ...but no live log touched
  EXPECT_EQ(before0, fx.ReadBackend(0, log));
  EXPECT_EQ(before1, fx.ReadBackend(1, log));

  // The quiesced full scrub then repairs it for real.
  auto full = *scrubber.ScrubOnce();
  EXPECT_GE(full.log_repairs, 1u);
  EXPECT_EQ(fx.ReadBackend(0, log), fx.ReadBackend(1, log));
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
}

// When no copy of a page is self-consistent and the surviving sidecar
// entries split evenly, there is no ground for electing a winner: each
// checksum certifies a different history, and overwriting either copy may
// discard committed data. The scrubber must report divergence and leave
// both copies untouched — not crown the numerically smallest CRC.
TEST(CorruptionSweep, TiedSidecarVoteIsDivergenceNotElection) {
  constexpr rvm::RegionId kTieRegion = 5;
  store::MemStore backends[2];
  store::ReplicatedStore replicated(
      std::vector<store::DurableStore*>{&backends[0], &backends[1]});

  // One page of different content per replica, each certified by the
  // *other* replica's checksum: neither copy is self-consistent, and the
  // entry vote ties 1-1.
  const std::vector<uint8_t> page_a(rvm::kDbPageSize, 0xAA);
  const std::vector<uint8_t> page_b(rvm::kDbPageSize, 0xBB);
  const uint32_t crc_a = rvm::PageCrc(page_a.data(), page_a.size());
  const uint32_t crc_b = rvm::PageCrc(page_b.data(), page_b.size());
  ASSERT_NE(crc_a, crc_b);
  const std::string db = rvm::RegionFileName(kTieRegion);
  auto write_replica = [&](size_t i, const std::vector<uint8_t>& data,
                           uint32_t entry_crc) {
    auto file = std::move(*backends[i].Open(db, /*create=*/true));
    ASSERT_TRUE(file->Write(0, base::ByteSpan(data.data(), data.size())).ok());
    ASSERT_TRUE(file->Sync().ok());
    auto sidecar =
        std::move(*rvm::ChecksumSidecar::Open(&backends[i], kTieRegion, /*create=*/true));
    ASSERT_TRUE(sidecar->WriteEntry(0, entry_crc).ok());
    ASSERT_TRUE(sidecar->Sync().ok());
  };
  write_replica(0, page_a, crc_b);
  write_replica(1, page_b, crc_a);

  rvm::Scrubber scrubber(&replicated, &replicated);
  auto report = *scrubber.ScrubOnce();
  EXPECT_GE(report.replica_divergence, 1u);
  EXPECT_GE(report.unrepairable, 1u);
  EXPECT_EQ(0u, report.repaired_from_replica);
  EXPECT_EQ(0u, report.repaired_from_log);

  // Both copies are exactly as they were: nothing was "repaired".
  auto read_all = [&](size_t i) {
    auto file = std::move(*backends[i].Open(db, /*create=*/false));
    std::vector<uint8_t> bytes(*file->Size());
    EXPECT_TRUE(file->ReadExact(0, bytes.data(), bytes.size()).ok());
    return bytes;
  };
  EXPECT_EQ(page_a, read_all(0));
  EXPECT_EQ(page_b, read_all(1));
}

// Without replication there is nothing to cross-check against, but the two
// clients' merged logs still reconstruct any page — the paper's §3.4 merge
// applied at page granularity.
TEST(CorruptionSweep, SingleStoreRepairsFromLogsAlone) {
  store::MemStore backend;
  store::CorruptionInjectingStore corrupt(&backend, 0xB17F11);
  lbc::Cluster cluster(&corrupt);
  cluster.DefineLock(kLock, kRegion, 1);
  {
    auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
    auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
    ASSERT_TRUE(a->MapRegion(kRegion, kLength).ok());
    ASSERT_TRUE(b->MapRegion(kRegion, kLength).ok());
    auto commit = [&](lbc::Client* c, uint64_t offset, uint8_t fill) {
      lbc::Transaction txn = c->Begin();
      ASSERT_TRUE(txn.Acquire(kLock).ok());
      ASSERT_TRUE(txn.SetRange(kRegion, offset, rvm::kDbPageSize).ok());
      std::memset(c->GetRegion(kRegion)->data() + offset, fill, rvm::kDbPageSize);
      ASSERT_TRUE(txn.Commit().ok());
    };
    commit(a.get(), 0, 0x55);
    commit(b.get(), rvm::kDbPageSize, 0x66);
    ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 2, 5000));
  }
  ASSERT_TRUE(
      cluster.ReplayAndRecordBaselines({rvm::LogFileName(1), rvm::LogFileName(2)}).ok());

  const std::string db = rvm::RegionFileName(kRegion);
  auto gold_file = std::move(*backend.Open(db, false));
  std::vector<uint8_t> gold(*gold_file->Size());
  ASSERT_TRUE(gold_file->ReadExact(0, gold.data(), gold.size()).ok());

  ASSERT_TRUE(corrupt.FlipBit(db, 100, 2).ok());
  rvm::Scrubber scrubber(&corrupt);  // no ReplicatedStore: logs are the only net
  auto report = *scrubber.ScrubOnce();
  EXPECT_GE(report.repaired_from_log, 1u);
  EXPECT_EQ(0u, report.unrepairable);
  std::vector<uint8_t> healed(gold.size());
  ASSERT_TRUE(gold_file->ReadExact(0, healed.data(), healed.size()).ok());
  EXPECT_EQ(gold, healed);
  EXPECT_TRUE((*scrubber.ScrubOnce()).clean());
}

}  // namespace
