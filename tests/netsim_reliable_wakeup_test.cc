// Regression test for the retransmit thread's wakeup handling.
//
// Every Send() notifies the retransmit thread's condition variable. The old
// loop treated a notified wait (cv_status::no_timeout) as "new state, nothing
// due yet" and skipped the due-frame scan, so under a steady stream of sends
// — each one waking the thread just before the pending deadline — frames that
// were already due kept being postponed. Any spurious wakeup has the same
// signature, which is why the fix ignores the wait's return reason entirely
// and always re-derives due work from the unacked-frame state.
//
// The test forces that exact notify storm: one frame is stuck behind a
// one-way partition while a fast stream of further sends hammers the CV.
// Retransmissions of the stuck frame must keep firing *during* the storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/netsim/fabric.h"
#include "src/netsim/reliable.h"

namespace {

TEST(ReliableChannelWakeup, NotifyStormDoesNotStarveRetransmits) {
  netsim::Fabric fabric;
  netsim::Endpoint* a = fabric.AddNode(1);
  netsim::Endpoint* b = fabric.AddNode(2);
  netsim::ReliableChannelOptions opts;
  opts.retransmit_initial_ms = 5;
  opts.retransmit_max_ms = 10;
  opts.max_retransmits = 0;  // never abandon: the partition outlives 50 tries
  netsim::ReliableChannel sender(a, opts);
  netsim::ReliableChannel receiver(b, opts);
  std::atomic<uint32_t> got{0};
  receiver.StartReceiver([&](netsim::Message&&) { got.fetch_add(1); });
  sender.StartReceiver([](netsim::Message&&) {});  // drains ACKs

  // DATA frames 1 -> 2 vanish silently; the reverse direction stays up.
  fabric.PartitionOneWay(1, 2);
  ASSERT_TRUE(sender.Send(2, {0x01}).ok());

  // Notify storm: each Send pokes the retransmit CV, so nearly every
  // wait_until in the retransmit thread returns as "notified" rather than
  // "timed out". With ~400 ms of storm and a 5-10 ms backoff, dozens of
  // retransmissions are due along the way.
  uint32_t storm_sends = 0;
  auto storm_end = std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < storm_end) {
    ASSERT_TRUE(sender.Send(2, {0x02}).ok());
    ++storm_sends;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(storm_sends, 20u);
  // The heart of the regression: due frames were rescanned and re-sent even
  // though every wakeup looked like a notify. A starved scan would sit at 0.
  EXPECT_GT(sender.stats().retransmits, 10u);
  EXPECT_EQ(0u, got.load());  // partition really dropped everything

  // Heal: retransmission repairs the backlog end to end, exactly once each.
  fabric.HealOneWay(1, 2);
  uint32_t total = 1 + storm_sends;
  for (int spin = 0; spin < 30000; ++spin) {
    if (got.load() >= total && sender.AllAcked()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(total, got.load());
  EXPECT_TRUE(sender.AllAcked());
  EXPECT_EQ(0u, sender.stats().frames_abandoned);
  sender.Shutdown();
  receiver.Shutdown();
}

}  // namespace
