// Standby-driven checkpointing: log trimming without quiescing writers,
// crash recovery from the trimmed state, and the selective trim's coverage
// rules (multi-lock records, lock-free records).
#include "src/lbc/standby.h"

#include <gtest/gtest.h>

#include <thread>

#include <cstring>

#include "src/rvm/recovery.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;
constexpr rvm::LockId kLock = 10;

struct StandbyFixture {
  explicit StandbyFixture(int n_writers) {
    cluster = std::make_unique<lbc::Cluster>(&store);
    cluster->DefineLock(kLock, kRegion, 1);
    for (int i = 0; i < n_writers; ++i) {
      writers.push_back(std::move(*lbc::Client::Create(cluster.get(), 1 + i, {})));
      EXPECT_TRUE(writers.back()->MapRegion(kRegion, 8192).ok());
    }
    lbc::ClientOptions standby_options;
    standby_options.versioned_reads = true;
    standby = std::move(*lbc::Client::Create(cluster.get(), 100, standby_options));
    EXPECT_TRUE(standby->MapRegion(kRegion, 8192).ok());
  }

  std::vector<lbc::Client*> WriterPtrs() {
    std::vector<lbc::Client*> out;
    for (auto& w : writers) {
      out.push_back(w.get());
    }
    return out;
  }

  uint64_t LogSize(rvm::NodeId node) {
    auto file = std::move(*store.Open(rvm::LogFileName(node), true));
    return *file->Size();
  }

  store::MemStore store;
  std::unique_ptr<lbc::Cluster> cluster;
  std::vector<std::unique_ptr<lbc::Client>> writers;
  std::unique_ptr<lbc::Client> standby;
};

void CommitByte(lbc::Client* c, uint64_t offset, uint8_t value) {
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  ASSERT_TRUE(txn.SetRange(kRegion, offset, 1).ok());
  c->GetRegion(kRegion)->data()[offset] = value;
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(Standby, CheckpointEmptiesFullyCoveredLogs) {
  StandbyFixture fx(2);
  CommitByte(fx.writers[0].get(), 0, 1);
  ASSERT_TRUE(fx.writers[1]->WaitForAppliedSeq(kLock, 1, 5000));
  CommitByte(fx.writers[1].get(), 1, 2);
  // Wait until the standby has RECEIVED both updates (buffered).
  for (int i = 0; i < 2000 && fx.standby->stats().updates_received < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fx.standby->stats().updates_received, 2u);

  EXPECT_GT(fx.LogSize(1), 0u);
  ASSERT_TRUE(lbc::CheckpointFromStandby(fx.cluster.get(), fx.standby.get(),
                                         fx.WriterPtrs())
                  .ok());
  EXPECT_EQ(0u, fx.LogSize(1));
  EXPECT_EQ(0u, fx.LogSize(2));

  // The database file holds the checkpointed state.
  auto db = std::move(*fx.store.Open(rvm::RegionFileName(kRegion), false));
  uint8_t buf[2];
  ASSERT_TRUE(db->ReadExact(0, buf, 2).ok());
  EXPECT_EQ(1, buf[0]);
  EXPECT_EQ(2, buf[1]);
}

TEST(Standby, UncoveredRecordsSurviveTheTrim) {
  StandbyFixture fx(1);
  lbc::Client* writer = fx.writers[0].get();
  CommitByte(writer, 0, 1);
  for (int i = 0; i < 2000 && fx.standby->stats().updates_received < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fix the cut (covers seq 1) but commit MORE work before the trim runs —
  // emulating commits racing the checkpoint.
  ASSERT_TRUE(fx.standby->Accept().ok());
  CommitByte(writer, 1, 2);  // seq 2: above the cut
  ASSERT_TRUE(lbc::CheckpointFromStandby(fx.cluster.get(), fx.standby.get(),
                                         fx.WriterPtrs())
                  .ok());
  // NOTE: CheckpointFromStandby re-Accepts, so the cut may now cover seq 2
  // as well (if the update arrived in time). Either way, recovery must
  // produce both bytes:
  fx.store.Crash();
  lbc::Cluster cluster2(&fx.store);
  cluster2.DefineLock(kLock, kRegion, 1);
  ASSERT_TRUE(cluster2.RecoverAndTrim({1}).ok());
  auto db = std::move(*fx.store.Open(rvm::RegionFileName(kRegion), false));
  uint8_t buf[2];
  ASSERT_TRUE(db->ReadExact(0, buf, 2).ok());
  EXPECT_EQ(1, buf[0]);
  EXPECT_EQ(2, buf[1]);
}

TEST(Standby, WritersKeepCommittingDuringCheckpoint) {
  StandbyFixture fx(2);
  lbc::Client* writer = fx.writers[0].get();
  for (int i = 0; i < 5; ++i) {
    CommitByte(writer, static_cast<uint64_t>(i), static_cast<uint8_t>(i + 1));
  }
  for (int i = 0; i < 2000 && fx.standby->stats().updates_received < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(lbc::CheckpointFromStandby(fx.cluster.get(), fx.standby.get(),
                                         fx.WriterPtrs())
                  .ok());
  // No locks were taken by the checkpoint: an immediate commit succeeds
  // with the NEXT sequence number (nothing was consumed or rolled back).
  CommitByte(writer, 7, 77);
  EXPECT_EQ(6u, writer->AppliedSeq(kLock));
  // And a crash now recovers checkpoint + post-checkpoint log.
  fx.store.Crash();
  lbc::Cluster cluster2(&fx.store);
  cluster2.DefineLock(kLock, kRegion, 1);
  ASSERT_TRUE(cluster2.RecoverAndTrim({1, 2}).ok());
  auto db = std::move(*fx.store.Open(rvm::RegionFileName(kRegion), false));
  uint8_t buf[8];
  ASSERT_TRUE(db->ReadExact(0, buf, 8).ok());
  EXPECT_EQ(5, buf[4]);
  EXPECT_EQ(77, buf[7]);
}

TEST(Standby, RequiresMappedRegions) {
  StandbyFixture fx(1);
  fx.cluster->DefineLock(99, /*region=*/50, /*manager=*/1);  // standby lacks region 50
  EXPECT_EQ(base::StatusCode::kFailedPrecondition,
            lbc::CheckpointFromStandby(fx.cluster.get(), fx.standby.get(),
                                       fx.WriterPtrs())
                .code());
}

TEST(Standby, BaselineLetsLateJoinersSkipHistory) {
  StandbyFixture fx(1);
  CommitByte(fx.writers[0].get(), 0, 42);
  for (int i = 0; i < 2000 && fx.standby->stats().updates_received < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(lbc::CheckpointFromStandby(fx.cluster.get(), fx.standby.get(),
                                         fx.WriterPtrs())
                  .ok());
  auto late = std::move(*lbc::Client::Create(fx.cluster.get(), 50, {}));
  rvm::Region* region = *late->MapRegion(kRegion, 8192);
  EXPECT_EQ(42, region->data()[0]);            // image from the checkpoint
  EXPECT_EQ(1u, late->AppliedSeq(kLock));      // baseline adopted
  // Fully participates afterwards.
  CommitByte(fx.writers[0].get(), 1, 7);
  ASSERT_TRUE(late->WaitForAppliedSeq(kLock, 2, 5000));
  EXPECT_EQ(7, late->GetRegion(kRegion)->data()[1]);
}

TEST(Standby, MultiLockRecordKeptUntilBothLocksCovered) {
  // A record holding two locks is only covered when BOTH sequence numbers
  // are at or below their baselines.
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  cluster.DefineLock(11, kRegion, 1);
  auto writer = std::move(*lbc::Client::Create(&cluster, 1, {}));
  ASSERT_TRUE(writer->MapRegion(kRegion, 8192).ok());
  {
    lbc::Transaction txn = writer->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.Acquire(11).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 1).ok());
    writer->GetRegion(kRegion)->data()[0] = 1;
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Baseline covers kLock but NOT lock 11: record must survive.
  std::map<rvm::LockId, uint64_t> partial = {{kLock, 1}};
  ASSERT_TRUE(writer->rvm()->TrimLogWithBaselines(partial).ok());
  auto kept = *rvm::ReadLogTransactions(&store, rvm::LogFileName(1));
  ASSERT_EQ(1u, kept.size());
  // Covering both locks trims it.
  std::map<rvm::LockId, uint64_t> full = {{kLock, 1}, {11, 1}};
  ASSERT_TRUE(writer->rvm()->TrimLogWithBaselines(full).ok());
  kept = *rvm::ReadLogTransactions(&store, rvm::LogFileName(1));
  EXPECT_TRUE(kept.empty());
}

}  // namespace
