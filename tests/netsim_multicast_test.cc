// Fabric multicast semantics (§4.3.1 extension).
#include <gtest/gtest.h>

#include "src/netsim/fabric.h"

namespace {

TEST(Multicast, DeliversToAllRecipients) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  auto* c = fabric.AddNode(3);
  ASSERT_TRUE(sender->Multicast({2, 3}, {7, 8}).ok());
  auto mb = b->Receive();
  auto mc = c->Receive();
  ASSERT_TRUE(mb.has_value());
  ASSERT_TRUE(mc.has_value());
  EXPECT_EQ(mb->payload, mc->payload);
  EXPECT_EQ(1u, mb->from);
}

TEST(Multicast, ChargedAsOneMessage) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  fabric.AddNode(2);
  fabric.AddNode(3);
  fabric.AddNode(4);
  ASSERT_TRUE(sender->Multicast({2, 3, 4}, std::vector<uint8_t>(100, 1)).ok());
  netsim::EndpointStats s = sender->stats();
  EXPECT_EQ(1u, s.messages_sent);
  EXPECT_EQ(100u, s.bytes_sent);
}

TEST(Multicast, SkipsUnknownRecipients) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  ASSERT_TRUE(sender->Multicast({2, 99}, {5}).ok());
  EXPECT_TRUE(b->Receive().has_value());
}

TEST(Multicast, PerPairFifoWithUnicast) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  ASSERT_TRUE(sender->Send(2, {1}).ok());
  ASSERT_TRUE(sender->Multicast({2}, {2}).ok());
  ASSERT_TRUE(sender->Send(2, {3}).ok());
  for (uint8_t i = 1; i <= 3; ++i) {
    auto msg = b->Receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(i, msg->payload[0]);
  }
}

TEST(Multicast, RespectsHeldLinks) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  auto* c = fabric.AddNode(3);
  fabric.HoldLink(1, 2);
  ASSERT_TRUE(sender->Multicast({2, 3}, {9}).ok());
  EXPECT_TRUE(c->Receive().has_value());  // c gets it immediately
  fabric.ReleaseLink(1, 2);
  EXPECT_TRUE(b->Receive().has_value());  // b only after release
}

TEST(Multicast, EmptyRecipientListIsOk) {
  netsim::Fabric fabric;
  auto* sender = fabric.AddNode(1);
  EXPECT_TRUE(sender->Multicast({}, {1}).ok());
  EXPECT_EQ(1u, sender->stats().messages_sent);
}

}  // namespace
