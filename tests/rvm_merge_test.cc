// Multi-log merge (§3.4): ordering by lock sequence numbers, intra-node
// order preservation, failure on inconsistent inputs, and the offline merge
// utility + recovery path.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/rvm/log_format.h"
#include "src/rvm/log_io.h"
#include "src/rvm/log_merge.h"
#include "src/rvm/recovery.h"
#include "src/store/mem_store.h"

namespace {

rvm::TransactionRecord Txn(rvm::NodeId node, uint64_t commit_seq,
                           std::vector<rvm::LockRecord> locks,
                           std::vector<rvm::RangeImage> ranges = {}) {
  rvm::TransactionRecord t;
  t.node = node;
  t.commit_seq = commit_seq;
  t.locks = std::move(locks);
  t.ranges = std::move(ranges);
  return t;
}

TEST(LogMerge, OrdersByLockSequence) {
  // Node 1 held lock 5 at sequences 2 and 3; node 2 at sequence 1.
  std::vector<std::vector<rvm::TransactionRecord>> logs(2);
  logs[0] = {Txn(1, 1, {{5, 2}}), Txn(1, 2, {{5, 3}})};
  logs[1] = {Txn(2, 1, {{5, 1}})};
  auto merged = *rvm::MergeTransactionLists(std::move(logs));
  ASSERT_EQ(3u, merged.size());
  EXPECT_EQ(2u, merged[0].node);
  EXPECT_EQ(1u, merged[1].node);
  EXPECT_EQ(1u, merged[1].commit_seq);
  EXPECT_EQ(2u, merged[2].commit_seq);
}

TEST(LogMerge, PreservesIntraNodeOrderForUnrelatedLocks) {
  std::vector<std::vector<rvm::TransactionRecord>> logs(1);
  logs[0] = {Txn(1, 1, {{5, 1}}), Txn(1, 2, {{6, 1}}), Txn(1, 3, {{5, 2}})};
  auto merged = *rvm::MergeTransactionLists(std::move(logs));
  ASSERT_EQ(3u, merged.size());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(i + 1, merged[i].commit_seq);
  }
}

TEST(LogMerge, InterleavesTwoWritersOnOneLock) {
  // Alternating ownership: seqs 1,3 at node 1; 2,4 at node 2.
  std::vector<std::vector<rvm::TransactionRecord>> logs(2);
  logs[0] = {Txn(1, 1, {{9, 1}}), Txn(1, 2, {{9, 3}})};
  logs[1] = {Txn(2, 1, {{9, 2}}), Txn(2, 2, {{9, 4}})};
  auto merged = *rvm::MergeTransactionLists(std::move(logs));
  ASSERT_EQ(4u, merged.size());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(i + 1, merged[i].locks[0].sequence);
  }
}

TEST(LogMerge, MultiLockTransactionsRespectAllConstraints) {
  // T_a holds (L1,1)(L2,2); T_b holds (L2,1): T_b must precede T_a.
  std::vector<std::vector<rvm::TransactionRecord>> logs(2);
  logs[0] = {Txn(1, 1, {{1, 1}, {2, 2}})};
  logs[1] = {Txn(2, 1, {{2, 1}})};
  auto merged = *rvm::MergeTransactionLists(std::move(logs));
  ASSERT_EQ(2u, merged.size());
  EXPECT_EQ(2u, merged[0].node);
}

TEST(LogMerge, NoLockTransactionsAreFreelyOrdered) {
  std::vector<std::vector<rvm::TransactionRecord>> logs(2);
  logs[0] = {Txn(1, 1, {})};
  logs[1] = {Txn(2, 1, {})};
  auto merged = *rvm::MergeTransactionLists(std::move(logs));
  EXPECT_EQ(2u, merged.size());
}

TEST(LogMerge, DetectsImpossibleOrder) {
  // Cross dependency: node1 has (L1,1)(L2,2) then nothing; node2 has
  // (L2,1)(L1,2) in ONE transaction — cycle.
  std::vector<std::vector<rvm::TransactionRecord>> logs(2);
  logs[0] = {Txn(1, 1, {{1, 2}, {2, 1}})};
  logs[1] = {Txn(2, 1, {{1, 1}, {2, 2}})};
  auto merged = rvm::MergeTransactionLists(std::move(logs));
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(base::StatusCode::kFailedPrecondition, merged.status().code());
}

TEST(LogMerge, EmptyInputs) {
  auto merged = *rvm::MergeTransactionLists({});
  EXPECT_TRUE(merged.empty());
  auto merged2 = *rvm::MergeTransactionLists({{}, {}});
  EXPECT_TRUE(merged2.empty());
}

// Property: merging randomly interleaved per-lock histories always yields
// an order where every lock's sequence numbers appear ascending.
class MergePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergePropertyTest, MergedLockSequencesAscend) {
  base::Rng rng(GetParam());
  constexpr int kNodes = 4;
  constexpr int kLocks = 3;
  uint64_t next_seq[kLocks] = {0, 0, 0};
  std::vector<std::vector<rvm::TransactionRecord>> logs(kNodes);
  uint64_t commit_seq[kNodes] = {0, 0, 0, 0};
  // Simulate strict 2PL: each new transaction grabs 1-2 locks and receives
  // each lock's next global sequence number.
  for (int i = 0; i < 60; ++i) {
    int node = static_cast<int>(rng.Uniform(kNodes));
    int first_lock = static_cast<int>(rng.Uniform(kLocks));
    std::vector<rvm::LockRecord> locks = {{static_cast<uint64_t>(first_lock),
                                           ++next_seq[first_lock]}};
    if (rng.Chance(1, 3)) {
      int second = (first_lock + 1) % kLocks;
      locks.push_back({static_cast<uint64_t>(second), ++next_seq[second]});
    }
    logs[node].push_back(Txn(node + 1, ++commit_seq[node], std::move(locks)));
  }
  auto merged = rvm::MergeTransactionLists(std::move(logs));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  std::map<uint64_t, uint64_t> last_seen;
  std::map<rvm::NodeId, uint64_t> last_commit;
  for (const auto& txn : *merged) {
    for (const auto& lock : txn.locks) {
      EXPECT_GT(lock.sequence, last_seen[lock.lock_id]);
      last_seen[lock.lock_id] = lock.sequence;
    }
    EXPECT_GT(txn.commit_seq, last_commit[txn.node]);
    last_commit[txn.node] = txn.commit_seq;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest, ::testing::Range<uint64_t>(0, 12));

TEST(LogMerge, WriteMergedLogIsReplayable) {
  store::MemStore store;
  // Two nodes write interleaved updates to the same byte under one lock.
  auto write_log = [&](rvm::NodeId node, std::vector<rvm::TransactionRecord> txns) {
    auto file = std::move(*store.Open(rvm::LogFileName(node), true));
    rvm::LogWriter writer(std::move(file));
    for (const auto& t : txns) {
      auto payload = rvm::EncodeTransaction(t);
      ASSERT_TRUE(writer.Append(base::ByteSpan(payload.data(), payload.size()), true).ok());
    }
  };
  write_log(1, {Txn(1, 1, {{5, 1}}, {{1, 0, {10}}}), Txn(1, 2, {{5, 3}}, {{1, 0, {30}}})});
  write_log(2, {Txn(2, 1, {{5, 2}}, {{1, 0, {20}}}), Txn(2, 2, {{5, 4}}, {{1, 0, {40}}})});

  ASSERT_TRUE(
      rvm::WriteMergedLog(&store, {rvm::LogFileName(1), rvm::LogFileName(2)}, "merged.rvm")
          .ok());
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, {"merged.rvm"}).ok());

  auto db = std::move(*store.Open(rvm::RegionFileName(1), false));
  uint8_t value = 0;
  ASSERT_TRUE(db->ReadExact(0, &value, 1).ok());
  EXPECT_EQ(40, value);  // the lock-sequence-last write wins
}

TEST(Recovery, CheckpointRecordResetsReplay) {
  store::MemStore store;
  auto file = std::move(*store.Open("log", true));
  rvm::LogWriter writer(std::move(file));
  auto t1 = rvm::EncodeTransaction(Txn(1, 1, {}, {{1, 0, {111}}}));
  auto ckpt = rvm::EncodeCheckpoint();
  auto t2 = rvm::EncodeTransaction(Txn(1, 2, {}, {{1, 1, {222}}}));
  ASSERT_TRUE(writer.Append(base::ByteSpan(t1.data(), t1.size()), false).ok());
  ASSERT_TRUE(writer.Append(base::ByteSpan(ckpt.data(), ckpt.size()), false).ok());
  ASSERT_TRUE(writer.Append(base::ByteSpan(t2.data(), t2.size()), true).ok());

  auto txns = *rvm::ReadLogTransactions(&store, "log");
  ASSERT_EQ(1u, txns.size());
  EXPECT_EQ(2u, txns[0].commit_seq);
}

TEST(Recovery, ReplayIsIdempotent) {
  store::MemStore store;
  auto file = std::move(*store.Open(rvm::LogFileName(1), true));
  rvm::LogWriter writer(std::move(file));
  auto t1 = rvm::EncodeTransaction(Txn(1, 1, {}, {{1, 4, {7, 8, 9}}}));
  ASSERT_TRUE(writer.Append(base::ByteSpan(t1.data(), t1.size()), true).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, {rvm::LogFileName(1)}).ok());
  }
  auto db = std::move(*store.Open(rvm::RegionFileName(1), false));
  uint8_t buf[3];
  ASSERT_TRUE(db->ReadExact(4, buf, 3).ok());
  EXPECT_EQ(7, buf[0]);
  EXPECT_EQ(9, buf[2]);
}

TEST(Recovery, MissingLogIsError) {
  store::MemStore store;
  auto r = rvm::ReadLogTransactions(&store, "absent");
  EXPECT_FALSE(r.ok());
}

}  // namespace
