// Cost model: the paper's published breakevens and estimator behaviour.
#include <gtest/gtest.h>

#include "src/costmodel/alpha_costs.h"

namespace {

using costmodel::AlphaAn1Costs;
using costmodel::OperationCosts;
using costmodel::UpdateProfile;

TEST(CostModel, Table2ConstantsMatchPaper) {
  OperationCosts c = AlphaAn1Costs();
  EXPECT_DOUBLE_EQ(171.9, c.page_copy_cold_us);
  EXPECT_DOUBLE_EQ(57.8, c.page_copy_warm_us);
  EXPECT_DOUBLE_EQ(281.0, c.page_compare_cold_us);
  EXPECT_DOUBLE_EQ(147.3, c.page_compare_warm_us);
  EXPECT_DOUBLE_EQ(677.0, c.page_send_us);
  EXPECT_DOUBLE_EQ(360.1, c.signal_us);
}

TEST(CostModel, PageVsCpyCmpBreakevenNear1037) {
  // Paper (Fig. 4): "When more than 1037 bytes are modified per page, Page
  // outperforms Cpy/Cmp."
  uint64_t breakeven = costmodel::PageVsCpyCmpBreakevenBytes(AlphaAn1Costs());
  EXPECT_NEAR(1037.0, static_cast<double>(breakeven), 60.0);
}

TEST(CostModel, Fig4CurvesCrossAtBreakeven) {
  OperationCosts c = AlphaAn1Costs();
  uint64_t b = costmodel::PageVsCpyCmpBreakevenBytes(c);
  EXPECT_LT(costmodel::Fig4CpyCmpUs(c, b - 200), costmodel::Fig4PageUs(c));
  EXPECT_GT(costmodel::Fig4CpyCmpUs(c, b + 200), costmodel::Fig4PageUs(c));
  // Log (per-byte only) undercuts both for small update counts.
  EXPECT_LT(costmodel::Fig4LogUs(c, 100), costmodel::Fig4CpyCmpUs(c, 100));
}

TEST(CostModel, LogBreakevenMatchesPaperNumbers) {
  // Paper (§4.3): "if there are 1000 updates per transaction, log-based
  // coherency performs better when there are 45 or fewer updates per page
  // (55 if the updates are ordered)."
  OperationCosts c = AlphaAn1Costs();
  EXPECT_NEAR(45.0,
              costmodel::LogVsCpyCmpBreakevenUpdatesPerPage(c, c.update_unordered_us), 1.5);
  EXPECT_NEAR(55.0,
              costmodel::LogVsCpyCmpBreakevenUpdatesPerPage(c, c.update_ordered_us), 1.5);
}

TEST(CostModel, FastTrapLowersBreakeven) {
  // Fig. 7: a hypothetical 10 us trap makes Cpy/Cmp's fixed cost smaller,
  // pulling the breakeven curve down.
  OperationCosts standard = AlphaAn1Costs();
  OperationCosts fast = standard;
  fast.signal_us = 10.0;
  for (double per_update = 5; per_update <= 30; per_update += 5) {
    EXPECT_LT(costmodel::LogVsCpyCmpBreakevenUpdatesPerPage(fast, per_update),
              costmodel::LogVsCpyCmpBreakevenUpdatesPerPage(standard, per_update));
  }
}

TEST(CostModel, EstimatorsScaleWithProfile) {
  OperationCosts c = AlphaAn1Costs();
  UpdateProfile small{.updates = 100,
                      .bytes_updated = 800,
                      .message_bytes = 1200,
                      .pages_updated = 100};
  UpdateProfile big = small;
  big.pages_updated = 200;
  EXPECT_GT(costmodel::EstimatePage(c, big).TotalUs(),
            costmodel::EstimatePage(c, small).TotalUs());
  EXPECT_GT(costmodel::EstimateCpyCmp(c, big).TotalUs(),
            costmodel::EstimateCpyCmp(c, small).TotalUs());
  // Log depends on updates, not pages.
  EXPECT_DOUBLE_EQ(costmodel::EstimateLog(c, big).TotalUs(),
                   costmodel::EstimateLog(c, small).TotalUs());
}

TEST(CostModel, SparseWorkloadFavorsLog) {
  // T12-A-like profile: 2187 updates, 4000 bytes, 500 pages.
  OperationCosts c = AlphaAn1Costs();
  UpdateProfile p{.updates = 2187,
                  .bytes_updated = 4000,
                  .message_bytes = 6000,
                  .pages_updated = 500};
  double log_us = costmodel::EstimateLog(c, p).TotalUs();
  double cpy_us = costmodel::EstimateCpyCmp(c, p).TotalUs();
  double page_us = costmodel::EstimatePage(c, p).TotalUs();
  EXPECT_LT(log_us, cpy_us);
  EXPECT_LT(cpy_us, page_us);
}

TEST(CostModel, IndexHeavyWorkloadFavorsCpyCmp) {
  // T3-C-like profile: 1.5M updates over 670 pages (~2243 updates/page).
  OperationCosts c = AlphaAn1Costs();
  UpdateProfile p{.updates = 1502708,
                  .bytes_updated = 115100,
                  .message_bytes = 163800,
                  .pages_updated = 670,
                  .updates_redundant = true};
  EXPECT_GT(costmodel::EstimateLog(c, p).TotalUs(),
            costmodel::EstimateCpyCmp(c, p).TotalUs() * 3);
}

TEST(CostModel, ClusteredT2BIsNearTie) {
  // T2-B: 71 updates/page — the paper calls Log "about as well as Cpy/Cmp".
  OperationCosts c = AlphaAn1Costs();
  UpdateProfile p{.updates = 43740,
                  .bytes_updated = 80000,
                  .message_bytes = 120000,
                  .pages_updated = 618};
  double log_us = costmodel::EstimateLog(c, p).TotalUs();
  double cpy_us = costmodel::EstimateCpyCmp(c, p).TotalUs();
  EXPECT_LT(log_us, cpy_us * 2.5);
  EXPECT_GT(log_us, cpy_us * 0.4);
}

TEST(CostModel, BreakdownComponentsNonNegative) {
  OperationCosts c = AlphaAn1Costs();
  UpdateProfile p{.updates = 10, .bytes_updated = 80, .message_bytes = 120,
                  .pages_updated = 3};
  for (const auto& b : {costmodel::EstimatePage(c, p), costmodel::EstimateCpyCmp(c, p),
                        costmodel::EstimateLog(c, p)}) {
    EXPECT_GE(b.detect_us, 0);
    EXPECT_GE(b.collect_us, 0);
    EXPECT_GE(b.network_us, 0);
    EXPECT_GE(b.apply_us, 0);
    EXPECT_DOUBLE_EQ(b.TotalUs(), b.detect_us + b.collect_us + b.network_us + b.apply_us);
  }
}

}  // namespace
