// DSM baselines: copy/compare twin-diff collection and the page-locking
// write-invalidate protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/baselines/cpycmp.h"
#include "src/baselines/page_dsm.h"

namespace {

// --- Cpy/Cmp -----------------------------------------------------------------

TEST(CpyCmp, DiffFindsExactModifiedBytes) {
  std::vector<uint8_t> buf(16384, 0);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(100, 8);
  std::memset(buf.data() + 100, 0xAA, 8);
  engine.NoteWrite(9000, 4);
  std::memset(buf.data() + 9000, 0xBB, 4);

  auto diffs = engine.CollectDiffs(/*region=*/1);
  ASSERT_EQ(2u, diffs.size());
  EXPECT_EQ(100u, diffs[0].offset);
  EXPECT_EQ(8u, diffs[0].data.size());
  EXPECT_EQ(9000u, diffs[1].offset);
  EXPECT_EQ(4u, diffs[1].data.size());
  EXPECT_EQ(0xAA, diffs[0].data[0]);
}

TEST(CpyCmp, OnlyFirstTouchTwinsAPage) {
  std::vector<uint8_t> buf(8192, 0);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(0, 8);
  engine.NoteWrite(64, 8);
  engine.NoteWrite(128, 8);
  EXPECT_EQ(1u, engine.stats().write_faults);
  EXPECT_EQ(1u, engine.dirty_pages());
}

TEST(CpyCmp, WriteSpanningPagesTwinsBoth) {
  std::vector<uint8_t> buf(16384, 0);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(8190, 4);
  EXPECT_EQ(2u, engine.stats().write_faults);
}

TEST(CpyCmp, UnmodifiedTwinnedPageProducesNoDiff) {
  std::vector<uint8_t> buf(8192, 7);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(0, 8);  // declared but never actually changed
  auto diffs = engine.CollectDiffs(1);
  EXPECT_TRUE(diffs.empty());
  EXPECT_EQ(1u, engine.stats().pages_compared);
  EXPECT_EQ(0u, engine.stats().diff_bytes);
}

TEST(CpyCmp, AdjacentChangesCoalesceIntoOneHunk) {
  std::vector<uint8_t> buf(8192, 0);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(0, 64);
  std::memset(buf.data() + 10, 1, 20);  // contiguous modified run
  auto diffs = engine.CollectDiffs(1);
  ASSERT_EQ(1u, diffs.size());
  EXPECT_EQ(10u, diffs[0].offset);
  EXPECT_EQ(20u, diffs[0].data.size());
}

TEST(CpyCmp, CollectResetsForNextInterval) {
  std::vector<uint8_t> buf(8192, 0);
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(0, 8);
  buf[0] = 1;
  EXPECT_EQ(1u, engine.CollectDiffs(1).size());
  // New interval: page must fault/twin again to be collected.
  buf[1] = 2;
  EXPECT_TRUE(engine.CollectDiffs(1).empty());
  engine.NoteWrite(0, 8);
  buf[2] = 3;
  auto diffs = engine.CollectDiffs(1);
  ASSERT_EQ(1u, diffs.size());
  EXPECT_EQ(2u, diffs[0].offset);
}

TEST(CpyCmp, TailPageShorterThanPageSize) {
  std::vector<uint8_t> buf(10000, 0);  // 8192 + 1808
  baselines::CpyCmpEngine engine(buf.data(), buf.size());
  engine.NoteWrite(9990, 10);
  buf[9999] = 1;
  auto diffs = engine.CollectDiffs(1);
  ASSERT_EQ(1u, diffs.size());
  EXPECT_EQ(9999u, diffs[0].offset);
}

// --- Page DSM ------------------------------------------------------------------

struct PageDsmFixture {
  explicit PageDsmFixture(int n_nodes, uint64_t len = 32768) {
    for (int i = 0; i < n_nodes; ++i) {
      nodes.push_back(std::make_unique<baselines::PageDsmNode>(&fabric, i + 1,
                                                               /*manager=*/1, len));
    }
  }
  netsim::Fabric fabric;
  std::vector<std::unique_ptr<baselines::PageDsmNode>> nodes;
};

TEST(PageDsm, ManagerStartsWithAllPagesWritable) {
  PageDsmFixture fx(2);
  EXPECT_EQ(baselines::PageAccess::kWrite, fx.nodes[0]->AccessOf(0));
  EXPECT_EQ(baselines::PageAccess::kInvalid, fx.nodes[1]->AccessOf(0));
}

TEST(PageDsm, ReadFetchesPageContents) {
  PageDsmFixture fx(2);
  ASSERT_TRUE(fx.nodes[0]->StartWrite(0).ok());
  std::memcpy(fx.nodes[0]->data(), "PAGE", 4);
  ASSERT_TRUE(fx.nodes[1]->StartRead(0).ok());
  EXPECT_EQ(0, std::memcmp(fx.nodes[1]->data(), "PAGE", 4));
  EXPECT_EQ(baselines::PageAccess::kRead, fx.nodes[1]->AccessOf(0));
  // The owner was demoted to a shared copy.
  EXPECT_EQ(baselines::PageAccess::kRead, fx.nodes[0]->AccessOf(0));
}

TEST(PageDsm, WriteInvalidatesReaders) {
  PageDsmFixture fx(3);
  ASSERT_TRUE(fx.nodes[1]->StartRead(0).ok());
  ASSERT_TRUE(fx.nodes[2]->StartRead(0).ok());
  ASSERT_TRUE(fx.nodes[1]->StartWrite(0).ok());
  std::memcpy(fx.nodes[1]->data(), "NEWV", 4);
  // Node 3's copy must be gone.
  EXPECT_EQ(baselines::PageAccess::kInvalid, fx.nodes[2]->AccessOf(0));
  EXPECT_GE(fx.nodes[2]->stats().invalidations_received, 1u);
  // Re-reading fetches the new data from the new owner.
  ASSERT_TRUE(fx.nodes[2]->StartRead(0).ok());
  EXPECT_EQ(0, std::memcmp(fx.nodes[2]->data(), "NEWV", 4));
}

TEST(PageDsm, WholePageTravels) {
  PageDsmFixture fx(2);
  ASSERT_TRUE(fx.nodes[0]->StartWrite(8192).ok());
  fx.nodes[0]->data()[8192] = 42;
  ASSERT_TRUE(fx.nodes[1]->StartRead(8192).ok());
  EXPECT_EQ(8192u, fx.nodes[0]->stats().page_bytes_sent);
  EXPECT_EQ(1u, fx.nodes[0]->stats().pages_sent);
}

TEST(PageDsm, PingPongOwnership) {
  PageDsmFixture fx(2);
  for (int round = 0; round < 10; ++round) {
    int writer = round % 2;
    ASSERT_TRUE(fx.nodes[writer]->StartWrite(0).ok());
    fx.nodes[writer]->data()[0] = static_cast<uint8_t>(round);
  }
  ASSERT_TRUE(fx.nodes[0]->StartRead(0).ok());
  EXPECT_EQ(9, fx.nodes[0]->data()[0]);
}

TEST(PageDsm, IndependentPagesDoNotInterfere) {
  PageDsmFixture fx(2);
  ASSERT_TRUE(fx.nodes[1]->StartWrite(0).ok());
  fx.nodes[1]->data()[0] = 1;
  ASSERT_TRUE(fx.nodes[0]->StartWrite(8192).ok());
  fx.nodes[0]->data()[8192] = 2;
  // Node 1 still owns page 0 exclusively.
  EXPECT_EQ(baselines::PageAccess::kWrite, fx.nodes[1]->AccessOf(0));
  EXPECT_EQ(baselines::PageAccess::kWrite, fx.nodes[0]->AccessOf(1));
}

TEST(PageDsm, OutOfRangeFaults) {
  PageDsmFixture fx(1, 8192);
  EXPECT_EQ(base::StatusCode::kOutOfRange, fx.nodes[0]->StartRead(9000).code());
}

TEST(PageDsm, ConcurrentWritersSerialize) {
  PageDsmFixture fx(3);
  constexpr int kRounds = 20;
  auto writer = [&](int idx) {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(fx.nodes[idx]->StartWrite(0).ok());
      // Increment under exclusive access; races would lose counts.
      uint32_t v;
      std::memcpy(&v, fx.nodes[idx]->data(), 4);
      ++v;
      std::memcpy(fx.nodes[idx]->data(), &v, 4);
    }
  };
  std::thread t1(writer, 0), t2(writer, 1), t3(writer, 2);
  t1.join();
  t2.join();
  t3.join();
  ASSERT_TRUE(fx.nodes[0]->StartRead(0).ok());
  uint32_t v;
  std::memcpy(&v, fx.nodes[0]->data(), 4);
  // Single-writer protocol can still interleave read-modify-write at the
  // application level, but every increment ran under exclusive page access
  // here because StartWrite was held across it... it is not (protocol only
  // guarantees access rights at fault time). The strong guarantee we CAN
  // assert: the final value never exceeds the total and at least one
  // increment from the last holder survives.
  EXPECT_GT(v, 0u);
  EXPECT_LE(v, static_cast<uint32_t>(3 * kRounds));
}

}  // namespace
