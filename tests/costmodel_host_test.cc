// Host measurement smoke tests: the Table 2 re-measurement must produce
// physically sensible numbers on any machine.
#include <gtest/gtest.h>

#include "src/costmodel/host_measure.h"

namespace {

TEST(HostMeasure, ProducesSensibleCosts) {
  costmodel::HostCosts costs = costmodel::MeasureHostCosts();
  EXPECT_EQ(8192, costs.page_size);
  // Everything measurable and positive.
  EXPECT_GT(costs.page_copy_warm_us, 0.0);
  EXPECT_GT(costs.page_compare_warm_us, 0.0);
  EXPECT_GT(costs.page_send_us, 0.0);
  EXPECT_GT(costs.signal_us, 0.0);
  // A protection-fault round trip costs far more than a warm 8 KB copy on
  // every real machine.
  EXPECT_GT(costs.signal_us, costs.page_copy_warm_us);
  // Sanity ceiling: nothing should take longer than 10 ms/page.
  EXPECT_LT(costs.page_copy_cold_us, 1e4);
  EXPECT_LT(costs.signal_us, 1e4);
}

}  // namespace
