// Early end-to-end checks of the RVM substrate: transactions, logging,
// recovery, and abort semantics. Deeper per-module tests live in the other
// rvm_* test files.
#include <gtest/gtest.h>

#include "src/rvm/recovery.h"
#include "src/rvm/rvm.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 1;

TEST(RvmSmoke, CommitSurvivesCrash) {
  store::MemStore store;
  {
    auto rvm_or = rvm::Rvm::Open(&store, /*node=*/1, rvm::RvmOptions{});
    ASSERT_TRUE(rvm_or.ok()) << rvm_or.status().ToString();
    auto& r = *rvm_or;
    auto region_or = r->MapRegion(kRegion, 4096);
    ASSERT_TRUE(region_or.ok());
    rvm::Region* region = *region_or;

    rvm::TxnId txn = r->BeginTransaction(rvm::RestoreMode::kRestore);
    ASSERT_TRUE(r->SetRange(txn, kRegion, 100, 8).ok());
    std::memcpy(region->data() + 100, "ABCDEFGH", 8);
    ASSERT_TRUE(r->EndTransaction(txn, rvm::CommitMode::kFlush).ok());
  }
  // Crash: all unsynced state vanishes; the flushed log survives.
  store.Crash();
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, {rvm::LogFileName(1)}).ok());

  auto rvm_or = rvm::Rvm::Open(&store, /*node=*/2, rvm::RvmOptions{});
  ASSERT_TRUE(rvm_or.ok());
  auto region_or = (*rvm_or)->MapRegion(kRegion, 4096);
  ASSERT_TRUE(region_or.ok());
  EXPECT_EQ(0, std::memcmp((*region_or)->data() + 100, "ABCDEFGH", 8));
}

TEST(RvmSmoke, AbortRestoresOldValues) {
  store::MemStore store;
  auto rvm_or = rvm::Rvm::Open(&store, 1, rvm::RvmOptions{});
  ASSERT_TRUE(rvm_or.ok());
  auto& r = *rvm_or;
  rvm::Region* region = *r->MapRegion(kRegion, 4096);

  rvm::TxnId setup = r->BeginTransaction(rvm::RestoreMode::kNoRestore);
  ASSERT_TRUE(r->SetRange(setup, kRegion, 0, 4).ok());
  std::memcpy(region->data(), "init", 4);
  ASSERT_TRUE(r->EndTransaction(setup, rvm::CommitMode::kFlush).ok());

  rvm::TxnId txn = r->BeginTransaction(rvm::RestoreMode::kRestore);
  ASSERT_TRUE(r->SetRange(txn, kRegion, 0, 4).ok());
  std::memcpy(region->data(), "EVIL", 4);
  ASSERT_TRUE(r->AbortTransaction(txn).ok());
  EXPECT_EQ(0, std::memcmp(region->data(), "init", 4));
}

TEST(RvmSmoke, UncommittedUpdatesLostOnCrash) {
  store::MemStore store;
  {
    auto r = std::move(*rvm::Rvm::Open(&store, 1, rvm::RvmOptions{}));
    rvm::Region* region = *r->MapRegion(kRegion, 4096);
    rvm::TxnId t1 = r->BeginTransaction(rvm::RestoreMode::kRestore);
    ASSERT_TRUE(r->SetRange(t1, kRegion, 0, 4).ok());
    std::memcpy(region->data(), "GOOD", 4);
    ASSERT_TRUE(r->EndTransaction(t1, rvm::CommitMode::kFlush).ok());

    // Second transaction commits without flushing, then the machine dies.
    rvm::TxnId t2 = r->BeginTransaction(rvm::RestoreMode::kRestore);
    ASSERT_TRUE(r->SetRange(t2, kRegion, 0, 4).ok());
    std::memcpy(region->data(), "LOST", 4);
    ASSERT_TRUE(r->EndTransaction(t2, rvm::CommitMode::kNoFlush).ok());
  }
  store.Crash();
  ASSERT_TRUE(rvm::ReplayLogsIntoDatabase(&store, {rvm::LogFileName(1)}).ok());
  auto r = std::move(*rvm::Rvm::Open(&store, 2, rvm::RvmOptions{}));
  rvm::Region* region = *r->MapRegion(kRegion, 4096);
  EXPECT_EQ(0, std::memcmp(region->data(), "GOOD", 4));
}

}  // namespace
