// Full paper-scale OO7 database checks (§4.1 cardinalities) and read-only
// traversals at scale. Kept in its own binary: building the 10,000-part
// database takes noticeably longer than the tiny-config tests.
#include <gtest/gtest.h>

#include <set>

#include "src/oo7/database.h"
#include "src/oo7/traversals.h"

namespace {

class FullScaleDb : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new oo7::Config();
    image_ = new std::vector<uint8_t>(oo7::Database::RequiredSize(*config_), 0);
    ASSERT_TRUE(oo7::Database::Build(image_->data(), image_->size(), *config_).ok());
  }
  static void TearDownTestSuite() {
    delete image_;
    delete config_;
    image_ = nullptr;
    config_ = nullptr;
  }
  oo7::Database db() { return oo7::Database(image_->data()); }

  static oo7::Config* config_;
  static std::vector<uint8_t>* image_;
};

oo7::Config* FullScaleDb::config_ = nullptr;
std::vector<uint8_t>* FullScaleDb::image_ = nullptr;

TEST_F(FullScaleDb, PaperCardinalities) {
  EXPECT_EQ(500u, config_->num_composite_parts);
  EXPECT_EQ(10000u, config_->NumAtomicParts());
  EXPECT_EQ(729u, config_->NumBaseAssemblies());
  EXPECT_EQ(1093u, config_->NumAssemblies());
  oo7::AvlIndex index = db().index();
  EXPECT_EQ(10000u, index.size());
}

TEST_F(FullScaleDb, IndexIsValidAtScale) { EXPECT_TRUE(db().index().Validate()); }

TEST_F(FullScaleDb, T6Visits2187Composites) {
  auto result = oo7::RunT6(db());
  EXPECT_EQ(2187u, result.composite_visits);
  EXPECT_EQ(0u, result.updates);
}

TEST_F(FullScaleDb, T1VisitsEveryPartPerVisit) {
  auto result = oo7::RunT1(db());
  EXPECT_EQ(2187u, result.composite_visits);
  EXPECT_EQ(2187u * 20, result.atomic_visits);
}

TEST_F(FullScaleDb, BaseAssembliesReferenceNearlyAllComposites) {
  // 2187 uniform draws over 500 composites: expect ~99% coverage (this is
  // why Table 3's "bytes updated" is 3960 rather than 4000 for us).
  std::set<uint64_t> referenced;
  oo7::Database d = db();
  for (uint32_t i = 0; i < config_->NumAssemblies(); ++i) {
    const oo7::Assembly* a = d.assembly(d.assembly_offset(i));
    if (a->kind == static_cast<uint32_t>(oo7::AssemblyKind::kBase)) {
      for (uint64_t child : a->children) {
        referenced.insert(child);
      }
    }
  }
  EXPECT_GT(referenced.size(), 480u);
  EXPECT_LE(referenced.size(), 500u);
}

TEST_F(FullScaleDb, DatabaseSizeIsLaptopScale) {
  // ~500 pages of atomic parts + areas: well under 10 MB.
  EXPECT_LT(image_->size(), 10ull << 20);
  EXPECT_GT(image_->size(), 4ull << 20);
}

}  // namespace
