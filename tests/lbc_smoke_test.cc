// Early end-to-end checks of log-based coherency: two clients sharing a
// region, committed updates propagating between caches, and the lock
// sequence interlock.
#include <gtest/gtest.h>

#include <cstring>

#include "src/lbc/client.h"
#include "src/store/mem_store.h"

namespace {

constexpr rvm::RegionId kRegion = 7;
constexpr rvm::LockId kLock = 42;

TEST(LbcSmoke, UpdatePropagatesBetweenClients) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, /*manager=*/1);

  auto a = std::move(*lbc::Client::Create(&cluster, 1, lbc::ClientOptions{}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, lbc::ClientOptions{}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 8192).ok());

  {
    lbc::Transaction txn = a->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 64, 5).ok());
    std::memcpy(a->GetRegion(kRegion)->data() + 64, "hello", 5);
    ASSERT_TRUE(txn.Commit().ok());
  }

  ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 1, /*timeout_ms=*/5000));
  EXPECT_EQ(0, std::memcmp(b->GetRegion(kRegion)->data() + 64, "hello", 5));
}

TEST(LbcSmoke, TokenPassesAndWritesInterleave) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);

  auto a = std::move(*lbc::Client::Create(&cluster, 1, lbc::ClientOptions{}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, lbc::ClientOptions{}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 8192).ok());

  // A writes 1, B increments to 2, A increments to 3 — every step must see
  // the previous writer's value.
  auto bump = [](lbc::Client* c, uint64_t expect_before) {
    lbc::Transaction txn = c->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    uint64_t value = 0;
    std::memcpy(&value, c->GetRegion(kRegion)->data(), 8);
    ASSERT_EQ(expect_before, value);
    ++value;
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 8).ok());
    std::memcpy(c->GetRegion(kRegion)->data(), &value, 8);
    ASSERT_TRUE(txn.Commit().ok());
  };

  bump(a.get(), 0);
  bump(b.get(), 1);
  bump(a.get(), 2);
  bump(b.get(), 3);

  EXPECT_EQ(2u, a->stats().updates_sent + 0);  // a committed twice, one peer
  EXPECT_GE(b->stats().updates_applied, 2u);
}

TEST(LbcSmoke, ReadOnlyTransactionsDoNotStallPeers) {
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);

  auto a = std::move(*lbc::Client::Create(&cluster, 1, lbc::ClientOptions{}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, lbc::ClientOptions{}));
  ASSERT_TRUE(a->MapRegion(kRegion, 8192).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 8192).ok());

  // Several read-only lock/unlock rounds on A must not advance the update
  // sequence B waits on.
  for (int i = 0; i < 3; ++i) {
    lbc::Transaction txn = a->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    lbc::Transaction txn = b->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 1).ok());
    b->GetRegion(kRegion)->data()[0] = 9;
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(a->WaitForAppliedSeq(kLock, 1, 5000));
  EXPECT_EQ(9, a->GetRegion(kRegion)->data()[0]);
}

}  // namespace
