// Link latency injection: delayed delivery, per-link FIFO preservation, and
// the §3.4 interlock exercised under real (timed) asynchrony rather than
// the deterministic hold/release.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>

#include "src/base/clock.h"
#include "src/lbc/client.h"
#include "src/netsim/fabric.h"
#include "src/store/mem_store.h"

namespace {

TEST(LinkDelay, DelaysDelivery) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  fabric.SetLinkDelay(1, 2, 20000);  // 20 ms
  base::Stopwatch timer;
  ASSERT_TRUE(a->Send(2, {1}).ok());
  auto msg = b->Receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(timer.ElapsedMicros(), 15000.0);
}

TEST(LinkDelay, OnlyConfiguredLinkIsDelayed) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  auto* c = fabric.AddNode(3);
  fabric.SetLinkDelay(1, 2, 50000);
  ASSERT_TRUE(a->Send(2, {1}).ok());
  ASSERT_TRUE(a->Send(3, {2}).ok());
  base::Stopwatch timer;
  auto fast = c->Receive();
  ASSERT_TRUE(fast.has_value());
  EXPECT_LT(timer.ElapsedMicros(), 40000.0);
  auto slow = b->Receive();
  ASSERT_TRUE(slow.has_value());
}

TEST(LinkDelay, FifoPreservedOnDelayedLink) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  fabric.SetLinkDelay(1, 2, 5000);
  for (uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(a->Send(2, {i}).ok());
  }
  for (uint8_t i = 0; i < 20; ++i) {
    auto msg = b->Receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(i, msg->payload[0]);
  }
}

TEST(LinkDelay, FifoSurvivesDelayReduction) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  fabric.SetLinkDelay(1, 2, 40000);
  ASSERT_TRUE(a->Send(2, {1}).ok());
  fabric.SetLinkDelay(1, 2, 1000);  // later message has a shorter delay...
  ASSERT_TRUE(a->Send(2, {2}).ok());
  // ...but must not overtake the first.
  EXPECT_EQ(1, b->Receive()->payload[0]);
  EXPECT_EQ(2, b->Receive()->payload[0]);
}

TEST(LinkDelay, ZeroRestoresImmediateDelivery) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  auto* b = fabric.AddNode(2);
  fabric.SetLinkDelay(1, 2, 30000);
  fabric.SetLinkDelay(1, 2, 0);
  base::Stopwatch timer;
  ASSERT_TRUE(a->Send(2, {1}).ok());
  ASSERT_TRUE(b->Receive().has_value());
  EXPECT_LT(timer.ElapsedMicros(), 20000.0);
}

TEST(LinkDelay, ShutdownWithPendingDelayedMessages) {
  netsim::Fabric fabric;
  auto* a = fabric.AddNode(1);
  fabric.AddNode(2);
  fabric.SetLinkDelay(1, 2, 1000000);  // 1 s, never delivered
  ASSERT_TRUE(a->Send(2, {1}).ok());
  fabric.Shutdown();  // must not hang or crash
}

// The §3.4 interlock under genuine asynchrony: a slow update link between
// the writer and a third node, no explicit holds. The reader must never
// observe B's update before A's.
TEST(LinkDelay, InterlockHoldsUnderTimedAsynchrony) {
  constexpr rvm::RegionId kRegion = 1;
  constexpr rvm::LockId kLock = 10;
  store::MemStore store;
  lbc::Cluster cluster(&store);
  cluster.DefineLock(kLock, kRegion, 1);
  auto a = std::move(*lbc::Client::Create(&cluster, 1, {}));
  auto b = std::move(*lbc::Client::Create(&cluster, 2, {}));
  auto c = std::move(*lbc::Client::Create(&cluster, 3, {}));
  ASSERT_TRUE(a->MapRegion(kRegion, 4096).ok());
  ASSERT_TRUE(b->MapRegion(kRegion, 4096).ok());
  ASSERT_TRUE(c->MapRegion(kRegion, 4096).ok());
  cluster.fabric()->SetLinkDelay(1, 3, 30000);  // A's updates reach C late

  auto commit = [&](lbc::Client* client, uint8_t v) {
    lbc::Transaction txn = client->Begin();
    ASSERT_TRUE(txn.Acquire(kLock).ok());
    ASSERT_TRUE(txn.SetRange(kRegion, 0, 1).ok());
    client->GetRegion(kRegion)->data()[0] = v;
    ASSERT_TRUE(txn.Commit().ok());
  };
  commit(a.get(), 1);
  ASSERT_TRUE(b->WaitForAppliedSeq(kLock, 1, 5000));
  commit(b.get(), 2);

  // C acquires: must block until A's delayed update lands, then see value 2.
  lbc::Transaction txn = c->Begin();
  ASSERT_TRUE(txn.Acquire(kLock).ok());
  EXPECT_EQ(2, c->GetRegion(kRegion)->data()[0]);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_GE(c->stats().updates_held + c->stats().acquire_waits, 1u);
}

}  // namespace
