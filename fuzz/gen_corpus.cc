// Seed-corpus generator. Every seed is produced by the REAL encoders (or a
// real LogWriter / sidecar rebuild over a MemStore), so each harness starts
// from deep inside the accepted format instead of fighting the CRC frame
// from zero. Also regenerates the pinned regression inputs under crashes/:
// hand-built byte strings that historic decoder bugs ACCEPTED (dual varint
// spellings, truncated identifiers, wrapping ranges, trailing bytes, loose
// header padding) — each must now be rejected cleanly, and the tier-1
// fuzz_regression_test replays them through the harnesses forever.
//
// Usage: gen_corpus <output-root>   (writes <root>/corpus/<harness>/* and
//                                    <root>/crashes/<harness>/*)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/buffer.h"
#include "src/fuzz/container.h"
#include "src/lbc/wire_format.h"
#include "src/rvm/log_format.h"
#include "src/rvm/log_io.h"
#include "src/rvm/page_checksum.h"
#include "src/rvm/types.h"
#include "src/store/mem_store.h"

namespace {

std::string g_root;

void WriteSeed(const std::string& kind, const std::string& harness,
               const std::string& name, base::ByteSpan bytes) {
  std::filesystem::path dir = std::filesystem::path(g_root) / kind / harness;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", (dir / name).c_str());
    std::exit(1);
  }
}

void Corpus(const std::string& harness, const std::string& name,
            const std::vector<uint8_t>& bytes) {
  WriteSeed("corpus", harness, name, base::ByteSpan(bytes.data(), bytes.size()));
}

void Crash(const std::string& harness, const std::string& name,
           const std::vector<uint8_t>& bytes) {
  WriteSeed("crashes", harness, name, base::ByteSpan(bytes.data(), bytes.size()));
}

rvm::TransactionRecord MakeTxn(rvm::NodeId node, uint64_t seq,
                               std::vector<rvm::LockRecord> locks,
                               std::vector<rvm::RangeImage> ranges) {
  rvm::TransactionRecord txn;
  txn.node = node;
  txn.commit_seq = seq;
  txn.locks = std::move(locks);
  txn.ranges = std::move(ranges);
  return txn;
}

rvm::RangeImage MakeRange(rvm::RegionId region, uint64_t offset, size_t len,
                          uint8_t fill) {
  rvm::RangeImage r;
  r.region = region;
  r.offset = offset;
  r.data.assign(len, fill);
  return r;
}

// A small realistic history: two nodes, a shared lock ordering them, ranges
// near and far apart (so compressed wire headers use both encodings).
std::vector<rvm::TransactionRecord> SampleHistory() {
  return {
      MakeTxn(0, 1, {{7, 1}}, {MakeRange(1, 0, 64, 0xAB), MakeRange(1, 4096, 16, 0x01)}),
      MakeTxn(1, 1, {{7, 2}}, {MakeRange(1, 100, 32, 0xCD)}),
      MakeTxn(0, 2, {{7, 3}, {9, 1}},
              {MakeRange(2, 9000, 300, 0x5A), MakeRange(2, 600000, 8, 0xEE)}),
      MakeTxn(1, 2, {}, {}),
  };
}

// Serializes transactions into a framed log image via the real LogWriter.
std::vector<uint8_t> BuildLogBytes(const std::vector<rvm::TransactionRecord>& txns,
                                   bool with_checkpoint) {
  store::MemStore store;
  auto file = store.Open("log.rvm", /*create=*/true);
  rvm::LogWriter writer(std::move(*file));
  if (with_checkpoint) {
    std::vector<uint8_t> cp = rvm::EncodeCheckpoint();
    if (!writer.Append(base::ByteSpan(cp.data(), cp.size()), false).ok()) {
      std::exit(1);
    }
  }
  for (const auto& txn : txns) {
    std::vector<uint8_t> payload = rvm::EncodeTransaction(txn);
    if (!writer.Append(base::ByteSpan(payload.data(), payload.size()), false).ok()) {
      std::exit(1);
    }
  }
  auto reopened = store.Open("log.rvm", /*create=*/false);
  auto size = (*reopened)->Size();
  std::vector<uint8_t> bytes(*size);
  if (!(*reopened)->ReadExact(0, bytes.data(), bytes.size()).ok()) {
    std::exit(1);
  }
  return bytes;
}

std::vector<uint8_t> Container2(const std::vector<uint8_t>& a,
                                const std::vector<uint8_t>& b) {
  return fuzz::JoinContainer({base::ByteSpan(a.data(), a.size()),
                              base::ByteSpan(b.data(), b.size())});
}

void GenLogSeeds() {
  auto history = SampleHistory();
  Corpus("log_transaction", "empty-txn", rvm::EncodeTransaction(MakeTxn(0, 1, {}, {})));
  Corpus("log_transaction", "locks-and-ranges", rvm::EncodeTransaction(history[0]));
  Corpus("log_transaction", "multi-lock", rvm::EncodeTransaction(history[2]));

  std::vector<rvm::TransactionRecord> node0 = {history[0], history[2]};
  std::vector<rvm::TransactionRecord> node1 = {history[1], history[3]};
  std::vector<uint8_t> log0 = BuildLogBytes(node0, /*with_checkpoint=*/false);
  std::vector<uint8_t> log1 = BuildLogBytes(node1, /*with_checkpoint=*/false);
  Corpus("log_frame_scan", "two-txns", log0);
  Corpus("log_frame_scan", "with-checkpoint", BuildLogBytes(node1, true));
  {
    std::vector<uint8_t> torn = log0;
    torn.resize(torn.size() - 5);  // tear inside the last frame
    Corpus("log_frame_scan", "torn-tail", torn);
  }
  Corpus("log_merge", "single-log", log0);
  Corpus("log_merge", "two-node-merge", Container2(log0, log1));
  Corpus("log_index_build", "single-log", log1);
  Corpus("log_index_build", "two-node-merge", Container2(log0, log1));

  // Pinned finds (inputs the pre-hardening decoders accepted, or crashed on):
  // 1. Dual varint spelling: node 0 written as 0x80 0x00 instead of 0x00.
  {
    std::vector<uint8_t> canonical = rvm::EncodeTransaction(MakeTxn(0, 1, {}, {}));
    std::vector<uint8_t> loose = {canonical[0], 0x80, 0x00};
    loose.insert(loose.end(), canonical.begin() + 2, canonical.end());
    Crash("log_transaction", "nonminimal-varint-node", loose);
  }
  // 2. NodeId above UINT32_MAX: the old decoder static_cast-truncated it.
  {
    base::Writer w;
    w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
    w.WriteVarint(uint64_t{1} << 40);  // node
    w.WriteVarint(1);                  // commit_seq
    w.WriteVarint(0);                  // n_locks
    w.WriteVarint(0);                  // n_ranges
    Crash("log_transaction", "node-id-overflows-u32", w.TakeBytes());
  }
  // 3. Range whose end wraps uint64 (offset UINT64_MAX, one data byte).
  {
    base::Writer w;
    w.WriteU8(static_cast<uint8_t>(rvm::LogRecordKind::kTransaction));
    w.WriteVarint(0);
    w.WriteVarint(1);
    w.WriteVarint(0);  // n_locks
    w.WriteVarint(1);  // n_ranges
    w.WriteVarint(1);  // region
    w.WriteVarint(UINT64_MAX);  // offset
    w.WriteVarint(1);  // len
    w.WriteU8(0xAA);
    Crash("log_transaction", "range-end-wraps-u64", w.TakeBytes());
  }
  // 4. Checkpoint record with trailing garbage: the old recovery scan
  //    cleared the recovered prefix on it.
  {
    store::MemStore store;
    auto file = store.Open("log.rvm", /*create=*/true);
    rvm::LogWriter writer(std::move(*file));
    std::vector<uint8_t> payload = rvm::EncodeTransaction(MakeTxn(0, 1, {}, {}));
    if (!writer.Append(base::ByteSpan(payload.data(), payload.size()), false).ok()) {
      std::exit(1);
    }
    std::vector<uint8_t> loose_cp = {
        static_cast<uint8_t>(rvm::LogRecordKind::kCheckpoint), 0xFF, 0xFF};
    if (!writer.Append(base::ByteSpan(loose_cp.data(), loose_cp.size()), false).ok()) {
      std::exit(1);
    }
    auto reopened = store.Open("log.rvm", /*create=*/false);
    auto size = (*reopened)->Size();
    std::vector<uint8_t> bytes(*size);
    if (!(*reopened)->ReadExact(0, bytes.data(), bytes.size()).ok()) {
      std::exit(1);
    }
    Crash("log_frame_scan", "checkpoint-trailing-bytes", bytes);
  }
}

void GenWireSeeds() {
  auto history = SampleHistory();
  for (bool compress : {false, true}) {
    std::string suffix = compress ? "compressed" : "uncompressed";
    Corpus("wire_update", "multi-range-" + suffix,
           lbc::EncodeUpdateRecord(history[2], compress));
    Corpus("wire_update", "near-ranges-" + suffix,
           lbc::EncodeUpdateRecord(history[0], compress));
  }
  Corpus("wire_lock_request", "basic",
         lbc::EncodeLockRequest({.lock = 7, .requester = 2, .applied_seq = 5, .epoch = 1}));
  Corpus("wire_lock_forward", "basic",
         lbc::EncodeLockForward({.lock = 7, .requester = 3, .applied_seq = 9, .epoch = 2}));
  Corpus("wire_lock_revoke", "basic",
         lbc::EncodeLockRevoke({.lock = 9, .epoch = 4, .manager = 0}));
  Corpus("wire_lock_revoke_reply", "holding",
         lbc::EncodeLockRevokeReply({.lock = 9,
                                     .epoch = 4,
                                     .node = 2,
                                     .holding = true,
                                     .had_token = false,
                                     .token_seq = 11,
                                     .applied_seq = 10}));
  {
    lbc::LockTokenMsg token;
    token.lock = 7;
    token.token_seq = 3;
    token.epoch = 1;
    Corpus("wire_lock_token", "no-piggyback", lbc::EncodeLockToken(token, true));
    token.piggyback = {history[0], history[1]};
    Corpus("wire_lock_token", "piggyback-compressed", lbc::EncodeLockToken(token, true));
    Corpus("wire_lock_token", "piggyback-uncompressed",
           lbc::EncodeLockToken(token, false));
  }

  // Pinned finds:
  // 1. Uncompressed update whose reserved padding is nonzero — the old
  //    decoder Skip()ed it unread (83 attacker bytes a forgery could hide in).
  {
    std::vector<uint8_t> loose =
        lbc::EncodeUpdateRecord(MakeTxn(0, 1, {}, {MakeRange(1, 0, 4, 0x11)}), false);
    // Layout: type(1) flag(1) node(1) seq(1) n_locks(1) n_ranges(1), then the
    // range's tag(1) region(4) start(8) len(8) pad(83) data(4). Byte 6+21 is
    // the first padding byte.
    loose[6 + 21] = 0x42;
    Crash("wire_update", "nonzero-reserved-padding", loose);
  }
  // 2. Compression flag byte outside {0,1}: old decoder treated any nonzero
  //    value as "compressed".
  {
    std::vector<uint8_t> loose = lbc::EncodeUpdateRecord(history[1], true);
    loose[1] = 0x37;
    Crash("wire_update", "bad-compression-flag", loose);
  }
  // 3. Delta range whose re-materialized offset wraps uint64.
  {
    base::Writer w;
    w.WriteU8(static_cast<uint8_t>(lbc::MsgType::kUpdate));
    w.WriteU8(1);      // compressed
    w.WriteVarint(0);  // node
    w.WriteVarint(1);  // commit_seq
    w.WriteVarint(0);  // n_locks
    w.WriteVarint(2);  // n_ranges
    w.WriteU8(0);      // absolute
    w.WriteVarint(1);  // region
    w.WriteVarint(UINT64_MAX - 2);  // offset
    w.WriteVarint(0);  // len
    w.WriteU8(0x01);   // delta tag
    w.WriteVarint(1);  // region
    w.WriteVarint(100);  // delta: wraps past UINT64_MAX
    w.WriteVarint(0);  // len
    Crash("wire_update", "delta-offset-wraps-u64", w.TakeBytes());
  }
  // 4. Trailing byte after a complete lock request: the old lock decoders
  //    ignored unconsumed bytes.
  {
    std::vector<uint8_t> loose =
        lbc::EncodeLockRequest({.lock = 1, .requester = 1, .applied_seq = 0, .epoch = 0});
    loose.push_back(0x00);
    Crash("wire_lock_request", "trailing-byte", loose);
  }
  // 5. Same for the revoke reply, plus an undefined flag bit.
  {
    std::vector<uint8_t> loose = lbc::EncodeLockRevokeReply(
        {.lock = 1, .epoch = 1, .node = 1, .holding = false, .had_token = true,
         .token_seq = 1, .applied_seq = 1});
    loose[loose.size() - 3] |= 0x80;  // flags byte: set an undefined bit
    Crash("wire_lock_revoke_reply", "undefined-flag-bit", loose);
  }
}

void GenSidecarSeeds() {
  // A real database file + sidecar pair built by the rebuild path.
  store::MemStore store;
  constexpr rvm::RegionId kRegion = 1;
  std::vector<uint8_t> db(2 * rvm::kDbPageSize + 777);
  for (size_t i = 0; i < db.size(); ++i) {
    db[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  {
    auto file = store.Open(rvm::RegionFileName(kRegion), /*create=*/true);
    if (!(*file)->Write(0, base::ByteSpan(db.data(), db.size())).ok()) {
      std::exit(1);
    }
  }
  if (!rvm::RewriteRegionChecksums(&store, kRegion).ok()) {
    std::exit(1);
  }
  auto sc = store.Open(rvm::ChecksumFileName(kRegion), /*create=*/false);
  auto size = (*sc)->Size();
  std::vector<uint8_t> sidecar(*size);
  if (!(*sc)->ReadExact(0, sidecar.data(), sidecar.size()).ok()) {
    std::exit(1);
  }
  Corpus("page_sidecar", "clean-pair", Container2(sidecar, db));
  {
    std::vector<uint8_t> rotten = sidecar;
    rotten[rvm::kChecksumHeaderSize + 3] ^= 0x40;  // rot inside entry 0's CRC
    Corpus("page_sidecar", "rotten-entry", Container2(rotten, db));
  }
  {
    std::vector<uint8_t> truncated = sidecar;
    truncated.resize(rvm::kChecksumHeaderSize + 5);  // tear mid-entry
    Corpus("page_sidecar", "torn-sidecar", Container2(truncated, db));
  }
  // Pinned find: a huge page index used to overflow the entry-offset
  // arithmetic (page * 8 + 16 wraps uint64 and aliases a low entry). The
  // harness probes those indices against whatever sidecar it is given.
  Crash("page_sidecar", "entry-offset-overflow", Container2(sidecar, db));
  // Pinned find: a container whose parts are all empty (count=2, first part
  // length 0, empty remainder) drove zero-length MemStore writes whose
  // std::memcpy received null src/dst pointers — UB even at size 0, caught
  // by UBSan in the sidecar, index-build, and merge harnesses.
  Crash("page_sidecar", "empty-parts-container", {0x02, 0x00, 0x00, 0x00});
  Crash("log_index_build", "empty-log-parts",
        {0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  g_root = argv[1];
  GenLogSeeds();
  GenWireSeeds();
  GenSidecarSeeds();
  std::fprintf(stderr, "corpus written under %s\n", g_root.c_str());
  return 0;
}
