// Per-harness fuzzer entry point. Each fuzz_<name> executable compiles this
// file with -DLBC_FUZZ_HARNESS="<name>" and links the harness registry.
//
// Two drivers share the harness and mutator code:
//   * Under clang, LBC_HAVE_LIBFUZZER is defined and libFuzzer drives the
//     loop (coverage feedback, -max_total_time/-runs/-timeout/-rss_limit_mb,
//     crash minimization). The structure-aware mutator plugs in through
//     LLVMFuzzerCustomMutator with LLVMFuzzerMutate as the inner byte
//     mutator, so coverage keeps steering inside frames.
//   * Under GCC (no libFuzzer runtime) this file provides a standalone
//     main(): it replays every corpus file, then runs a seeded mutation
//     loop honoring the same -max_total_time=/-runs=/-seed= flags. No
//     coverage feedback — but ASan/UBSan and every oracle still fire, a
//     per-input alarm catches hangs, and any find is written out as a
//     crash-*.bin reproducer exactly like libFuzzer would.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/fuzz/harness.h"
#include "src/fuzz/mutators.h"

#ifndef LBC_FUZZ_HARNESS
#error "compile with -DLBC_FUZZ_HARNESS=\"<harness name>\""
#endif

namespace {

const fuzz::Harness* TheHarness() {
  static const fuzz::Harness* h = [] {
    const fuzz::Harness* found = fuzz::FindHarness(LBC_FUZZ_HARNESS);
    if (found == nullptr) {
      std::fprintf(stderr, "unknown fuzz harness: %s\n", LBC_FUZZ_HARNESS);
      std::abort();
    }
    return found;
  }();
  return h;
}

}  // namespace

#ifdef LBC_HAVE_LIBFUZZER

extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size, size_t max_size);

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return TheHarness()->run(data, size);
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size, size_t max_size,
                                          unsigned int seed) {
  return fuzz::MutateInput(TheHarness()->mutator, data, size, max_size, seed,
                           LLVMFuzzerMutate);
}

#else  // standalone driver

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/rng.h"

namespace {

// State the crash handler needs; kept in plain globals so the handler only
// touches async-signal-safe machinery.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;
volatile sig_atomic_t g_in_input = 0;

void WriteAll(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = write(fd, p, len);
    if (n <= 0) {
      return;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

void CrashHandler(int sig) {
  if (g_in_input) {
    static const char kMsg[] = "\n=== fuzz driver: crash, reproducer in crash-" LBC_FUZZ_HARNESS
                               ".bin ===\n";
    WriteAll(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
    int fd = open("crash-" LBC_FUZZ_HARNESS ".bin", O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      WriteAll(fd, g_current_data, g_current_size);
      close(fd);
    }
  }
  if (sig == SIGALRM) {
    static const char kHang[] = "=== fuzz driver: per-input timeout (hang) ===\n";
    WriteAll(STDERR_FILENO, kHang, sizeof(kHang) - 1);
    _exit(70);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

int RunOne(const uint8_t* data, size_t size, unsigned timeout_s) {
  g_current_data = data;
  g_current_size = size;
  g_in_input = 1;
  alarm(timeout_s);
  int rc = TheHarness()->run(data, size);
  alarm(0);
  g_in_input = 0;
  return rc;
}

std::vector<std::filesystem::path> CollectInputs(const std::vector<std::string>& args) {
  std::vector<std::filesystem::path> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      files.emplace_back(arg);
    } else {
      std::fprintf(stderr, "warning: skipping missing input %s\n", arg.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  long long runs = -1;          // -1: unbounded (until max_total_time)
  long long max_total_time = 0; // 0: replay corpus only, no mutation loop
  unsigned timeout_s = 10;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "-seed=", 6) == 0) {
      seed = std::strtoull(a + 6, nullptr, 10);
    } else if (std::strncmp(a, "-runs=", 6) == 0) {
      runs = std::strtoll(a + 6, nullptr, 10);
    } else if (std::strncmp(a, "-max_total_time=", 16) == 0) {
      max_total_time = std::strtoll(a + 16, nullptr, 10);
    } else if (std::strncmp(a, "-timeout=", 9) == 0) {
      timeout_s = static_cast<unsigned>(std::strtoul(a + 9, nullptr, 10));
    } else if (a[0] == '-') {
      // Ignore unknown dashed flags so libFuzzer-style invocations
      // (-rss_limit_mb=..., -print_final_stats=1) keep working.
      std::fprintf(stderr, "note: ignoring flag %s\n", a);
    } else {
      inputs.emplace_back(a);
    }
  }

  for (int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL, SIGALRM}) {
    signal(sig, CrashHandler);
  }

  // Phase 1: replay every corpus file (also the reproducer path: pass a
  // single crash file to re-run it).
  std::vector<std::filesystem::path> files = CollectInputs(inputs);
  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& path : files) {
    corpus.push_back(ReadFileBytes(path));
    RunOne(corpus.back().data(), corpus.back().size(), timeout_s);
  }
  std::fprintf(stderr, "%s: replayed %zu corpus inputs\n", LBC_FUZZ_HARNESS,
               corpus.size());
  if (corpus.empty()) {
    corpus.push_back({});  // mutate from the empty input if no corpus given
  }

  // Phase 2: seeded mutation loop (no coverage feedback; the structure-aware
  // mutator carries the exploration).
  if (max_total_time <= 0 && runs < 0) {
    return 0;
  }
  base::Rng rng(seed);
  std::vector<uint8_t> buf(fuzz::kMaxInputBytes);
  auto start = std::chrono::steady_clock::now();
  long long done = 0;
  while (runs < 0 || done < runs) {
    if (max_total_time > 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      if (elapsed >= max_total_time) {
        break;
      }
    }
    const std::vector<uint8_t>& base_input = corpus[rng.Uniform(corpus.size())];
    size_t n = std::min(base_input.size(), buf.size());
    if (n > 0) {
      std::memcpy(buf.data(), base_input.data(), n);
    }
    n = fuzz::MutateInput(TheHarness()->mutator, buf.data(), n, buf.size(), rng.Next(),
                          nullptr);
    RunOne(buf.data(), n, timeout_s);
    ++done;
    if (done % 65536 == 0) {
      std::fprintf(stderr, "%s: %lld runs\n", LBC_FUZZ_HARNESS, done);
    }
  }
  std::fprintf(stderr, "%s: done, %lld mutation runs\n", LBC_FUZZ_HARNESS, done);
  return 0;
}

#endif  // LBC_HAVE_LIBFUZZER
